"""Tests for the characterization core: geometry, core-hours, utilization,
waiting, failures."""

import numpy as np
import pytest

from repro.core import (
    allocation_summary,
    analyze_geometry,
    analyze_utilization,
    arrival_summary,
    core_hour_shares,
    dominating_class,
    runtime_summary,
    status_by_class,
    status_shares,
    utilization_timeline,
    wait_by_class,
    wait_summary,
)
from repro.frame import Frame
from repro.traces import BLUE_WATERS, MIRA, PHILLY, JobStatus, Trace


def make_trace(system=PHILLY, **cols):
    n = len(cols.get("runtime", [60.0, 7200.0, 90000.0, 30.0]))
    base = {
        "submit_time": np.arange(n) * 100.0,
        "runtime": [60.0, 7200.0, 90000.0, 30.0],
        "cores": [1, 4, 16, 1],
        "wait_time": [10.0, 100.0, 1000.0, 0.0],
        "status": [0, 0, 2, 1],
    }
    base.update(cols)
    return Trace(system=system, jobs=Frame(base))


class TestGeometry:
    def test_runtime_summary_median(self):
        s = runtime_summary(make_trace())
        assert s.median == pytest.approx(np.median([60, 7200, 90000, 30]))
        assert s.system == "Philly"

    def test_runtime_cdf_monotone(self):
        s = runtime_summary(make_trace())
        assert np.all(np.diff(s.cdf_values) >= 0)
        assert s.cdf_values[-1] == 1.0

    def test_arrival_summary(self):
        s = arrival_summary(make_trace())
        assert s.median_interval == 100.0
        assert s.hourly_counts.shape == (24,)

    def test_arrival_peak_ratio_infinite_when_empty_hours(self):
        s = arrival_summary(make_trace())
        assert s.peak_ratio == float("inf")  # 4 jobs can't fill 24 hours

    def test_allocation_fractions(self):
        s = allocation_summary(make_trace())
        assert s.single_unit_fraction == 0.5
        assert s.over_1000_fraction == 0.0
        assert s.median_cores == 2.5

    def test_analyze_geometry_bundles(self):
        g = analyze_geometry(make_trace())
        assert g.runtime.system == g.arrival.system == g.allocation.system


class TestCoreHours:
    def test_shares_sum_to_one(self):
        s = core_hour_shares(make_trace())
        assert s.by_size.sum() == pytest.approx(1.0)
        assert s.by_length.sum() == pytest.approx(1.0)
        assert s.count_by_size.sum() == pytest.approx(1.0)

    def test_dominant_class(self):
        # the 16-GPU 25h job dominates: large size, long runtime
        s = core_hour_shares(make_trace())
        assert s.dominant_size() == "large"
        assert s.dominant_length() == "long"

    def test_dominating_class_threshold(self):
        s = core_hour_shares(make_trace())
        dom = dominating_class(s, threshold=0.5)
        assert "size:large" in dom and "length:long" in dom

    def test_total_core_hours(self):
        s = core_hour_shares(make_trace())
        expected = (60 * 1 + 7200 * 4 + 90000 * 16 + 30 * 1) / 3600
        assert s.total_core_hours == pytest.approx(expected)


class TestUtilization:
    def test_full_occupation(self):
        # one job holding all units from t=0..1000, probed over that window
        tr = Trace(
            system=PHILLY,
            jobs=Frame(
                {
                    "submit_time": [0.0, 1000.0],
                    "runtime": [1000.0, 0.0],
                    "cores": [PHILLY.schedulable_units, 1],
                    "wait_time": [0.0, 0.0],
                }
            ),
        )
        series = utilization_timeline(tr, n_buckets=4)
        assert series.values[0] == pytest.approx(1.0)
        assert series.average > 0.9

    def test_half_occupation(self):
        tr = Trace(
            system=PHILLY,
            jobs=Frame(
                {
                    "submit_time": [0.0, 0.0],
                    "runtime": [1000.0, 1000.0],
                    "cores": [PHILLY.schedulable_units // 2, 1],
                    "wait_time": [0.0, 0.0],
                }
            ),
        )
        series = utilization_timeline(tr, n_buckets=2)
        assert series.average == pytest.approx(0.5, abs=0.01)

    def test_values_bounded(self):
        series = utilization_timeline(make_trace(), n_buckets=10)
        assert np.all((series.values >= 0) & (series.values <= 1))

    def test_blue_waters_two_pools(self):
        tr = make_trace(system=BLUE_WATERS, pool=[0, 0, 1, 1])
        series = analyze_utilization(tr)
        assert [s.pool for s in series] == ["cpu", "gpu"]
        assert series[1].capacity == BLUE_WATERS.gpus * 16

    def test_single_pool_systems(self):
        assert [s.pool for s in analyze_utilization(make_trace())] == ["gpu"]
        assert [s.pool for s in analyze_utilization(make_trace(system=MIRA))] == ["cpu"]


class TestWaiting:
    def test_wait_summary_values(self):
        s = wait_summary(make_trace())
        assert s.median_wait == pytest.approx(np.median([10, 100, 1000, 0]))
        assert s.mean_wait == pytest.approx(np.mean([10, 100, 1000, 0]))

    def test_turnaround_cdf_below_wait_cdf(self):
        # turnaround >= wait pointwise, so its CDF is <= the wait CDF
        s = wait_summary(make_trace())
        assert np.all(s.turnaround_cdf <= s.wait_cdf + 1e-12)

    def test_fraction_waiting_less_than(self):
        s = wait_summary(make_trace())
        assert 0.0 <= s.fraction_waiting_less_than(60) <= 1.0

    def test_wait_by_class(self):
        s = wait_by_class(make_trace())
        # small jobs: waits 10, 0 -> mean 5; middle (4 GPUs): 100; large: 1000
        assert s.by_size[0] == pytest.approx(5.0)
        assert s.by_size[1] == pytest.approx(100.0)
        assert s.by_size[2] == pytest.approx(1000.0)
        assert s.longest_waiting_size() == 2

    def test_wait_by_class_empty_class_nan(self):
        tr = make_trace(cores=[1, 1, 1, 1])
        s = wait_by_class(tr)
        assert np.isnan(s.by_size[1]) and np.isnan(s.by_size[2])


class TestFailures:
    def test_status_shares(self):
        s = status_shares(make_trace())
        assert s.count_shares.sum() == pytest.approx(1.0)
        assert s.passed_count_share == 0.5
        assert s.n_jobs == 4

    def test_killed_amplification(self):
        s = status_shares(make_trace())
        # the killed job is the 16-GPU 25h monster -> amplification >> 1
        assert s.killed_amplification() > 2.0

    def test_wasted_share(self):
        s = status_shares(make_trace())
        assert 0.0 < s.wasted_core_hour_share < 1.0

    def test_status_by_class_rows_sum_to_one(self):
        s = status_by_class(make_trace())
        for k in range(3):
            if not np.isnan(s.by_length[k]).any():
                assert s.by_length[k].sum() == pytest.approx(1.0)

    def test_pass_rates(self):
        s = status_by_class(make_trace())
        # long class contains only the killed job
        assert s.pass_rate_by_length()[2] == 0.0

    def test_empty_class_is_nan(self):
        tr = make_trace(runtime=[10.0, 20.0, 30.0, 40.0])
        s = status_by_class(tr)
        assert np.isnan(s.by_length[1]).all()
        assert np.isnan(s.by_length[2]).all()
