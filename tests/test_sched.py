"""Scheduler simulator tests: cluster, policies, engine, backfilling."""

import numpy as np
import pytest

from repro.sched import (
    EASY,
    NO_BACKFILL,
    Cluster,
    SimWorkload,
    adaptive_relaxed,
    bounded_slowdown,
    compute_metrics,
    get_policy,
    relaxed,
    simulate,
    workload_from_trace,
)
from repro.traces.synth import generate_trace


def wl(submit, cores, runtime, walltime=None):
    submit = np.asarray(submit, dtype=float)
    runtime = np.asarray(runtime, dtype=float)
    return SimWorkload(
        submit=submit,
        cores=np.asarray(cores, dtype=np.int64),
        runtime=runtime,
        walltime=np.asarray(walltime, dtype=float) if walltime is not None else runtime,
        user=np.zeros(len(submit), dtype=np.int64),
    )


class TestCluster:
    def test_allocate_release(self):
        c = Cluster(10)
        c.start(0, 4, 100.0)
        assert c.free == 6 and c.used == 4
        c.finish(0)
        assert c.free == 10

    def test_over_allocate_raises(self):
        c = Cluster(4)
        with pytest.raises(RuntimeError):
            c.start(0, 5, 1.0)

    def test_reservation_immediate_when_free(self):
        c = Cluster(10)
        shadow, extra = c.reservation(4, now=50.0)
        assert shadow == 50.0 and extra == 6

    def test_reservation_waits_for_running(self):
        c = Cluster(10)
        c.start(0, 8, expected_end=100.0)
        shadow, extra = c.reservation(6, now=0.0)
        assert shadow == 100.0
        assert extra == 10 - 6

    def test_reservation_orders_by_end(self):
        c = Cluster(10)
        c.start(0, 5, expected_end=200.0)
        c.start(1, 5, expected_end=100.0)
        shadow, _ = c.reservation(5, now=0.0)
        assert shadow == 100.0  # earliest-ending job suffices

    def test_reservation_impossible(self):
        c = Cluster(4)
        with pytest.raises(RuntimeError):
            c.reservation(5, now=0.0)

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            Cluster(0)


class TestPolicies:
    def test_fcfs_order(self):
        p = get_policy("fcfs")
        order = p.order(
            np.array([5.0, 1.0, 3.0]),
            np.array([1, 1, 1]),
            np.array([10.0, 10.0, 10.0]),
            now=10.0,
        )
        assert list(order) == [1, 2, 0]

    def test_sjf_order(self):
        p = get_policy("sjf")
        order = p.order(
            np.array([0.0, 1.0]),
            np.array([1, 1]),
            np.array([100.0, 10.0]),
            now=10.0,
        )
        assert list(order) == [1, 0]

    def test_ties_broken_by_submit(self):
        p = get_policy("sjf")
        order = p.order(
            np.array([2.0, 1.0]),
            np.array([1, 1]),
            np.array([10.0, 10.0]),
            now=10.0,
        )
        assert list(order) == [1, 0]

    def test_wfp3_favors_waiting(self):
        p = get_policy("wfp3")
        order = p.order(
            np.array([0.0, 99.0]),
            np.array([1, 1]),
            np.array([10.0, 10.0]),
            now=100.0,
        )
        assert order[0] == 0  # waited 100s vs 1s

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            get_policy("quantum")

    def test_all_registered_policies_run(self):
        from repro.sched import POLICIES

        workload = wl([0, 1, 2, 3], [2, 2, 2, 2], [10, 10, 10, 10])
        for name in POLICIES:
            res = simulate(workload, capacity=4, policy=name)
            assert np.all(res.start >= workload.submit), name


class TestEngineBasics:
    def test_serial_execution_on_full_cluster(self):
        workload = wl([0, 0], [4, 4], [100, 100])
        res = simulate(workload, capacity=4)
        assert sorted(res.start) == [0.0, 100.0]

    def test_parallel_when_fits(self):
        workload = wl([0, 0], [2, 2], [100, 100])
        res = simulate(workload, capacity=4)
        assert list(res.start) == [0.0, 0.0]

    def test_no_start_before_submit(self):
        workload = wl([0, 500], [4, 4], [100, 100])
        res = simulate(workload, capacity=4)
        assert res.start[1] == 500.0

    def test_job_too_large_raises(self):
        with pytest.raises(ValueError, match="larger than"):
            simulate(wl([0], [8], [10]), capacity=4)

    def test_empty_workload_raises(self):
        with pytest.raises(ValueError):
            simulate(
                SimWorkload(
                    submit=np.array([]),
                    cores=np.array([], dtype=np.int64),
                    runtime=np.array([]),
                    walltime=np.array([]),
                    user=np.array([], dtype=np.int64),
                ),
                capacity=4,
            )

    def test_wait_metric(self):
        workload = wl([0, 0], [4, 4], [100, 100])
        res = simulate(workload, capacity=4)
        assert sorted(res.wait) == [0.0, 100.0]

    def test_queue_tracking(self):
        workload = wl([0, 0, 0], [4, 4, 4], [10, 10, 10])
        res = simulate(workload, capacity=4, track_queue=True)
        assert res.queue_samples.max() >= 2


class TestBackfilling:
    def test_easy_backfills_short_small_job(self):
        # j0 holds 4/5 cores; head j1 needs all 5; j2 (1 core, 10s) fits in
        # the hole and ends before the shadow time -> backfills immediately
        workload = wl(
            submit=[0, 1, 2],
            cores=[4, 5, 1],
            runtime=[100, 50, 10],
            walltime=[100, 50, 10],
        )
        res = simulate(workload, capacity=5, backfill=EASY)
        assert res.start[2] == 2.0
        assert res.start[1] == 100.0

    def test_no_backfill_blocks(self):
        workload = wl(
            submit=[0, 1, 2],
            cores=[4, 5, 1],
            runtime=[100, 50, 10],
        )
        res = simulate(workload, capacity=5, backfill=NO_BACKFILL)
        assert res.start[2] == 150.0  # waits for queue order

    def test_easy_protects_reservation(self):
        # j2 would delay the head's reservation -> must NOT backfill
        workload = wl(
            submit=[0, 1, 2],
            cores=[4, 4, 1],
            runtime=[100, 50, 500],
            walltime=[100, 50, 500],
        )
        res = simulate(workload, capacity=4, backfill=EASY)
        assert res.start[1] == 100.0  # head unharmed
        assert res.start[2] >= 150.0

    RELAX_CASE = dict(
        submit=[0, 0, 0],
        cores=[4, 6, 2],
        runtime=[100, 50, 120],
        walltime=[100, 50, 120],
    )

    def test_relaxed_allows_bounded_delay(self):
        # head j1 (6 cores) promised t=100; j2 (2 cores, 120s) would push it
        # to 120 -- inside a 50% relax window (100 + 0.5*100 = 150)
        workload = wl(**self.RELAX_CASE)
        strict = simulate(workload, capacity=6, backfill=EASY)
        loose = simulate(workload, capacity=6, backfill=relaxed(0.5))
        assert strict.start[2] > 100.0       # not backfilled under EASY
        assert loose.start[2] == 0.0         # backfilled under 50% relax
        assert loose.start[1] == 120.0       # head delayed within bound

    def test_violation_recorded_for_relaxed_delay(self):
        workload = wl(**self.RELAX_CASE)
        m = compute_metrics(simulate(workload, capacity=6, backfill=relaxed(0.5)))
        assert m.violation == pytest.approx(20.0)  # promised 100, started 120
        assert m.violation_count == 1

    def test_adaptive_relaxes_less_on_short_queue(self):
        workload = wl(**self.RELAX_CASE)
        # queue is tiny relative to max_queue_len -> factor ~ 0
        res = simulate(
            workload, capacity=6, backfill=adaptive_relaxed(0.5, max_queue_len=1000)
        )
        assert res.start[2] > 0.0  # no effective relaxation

    def test_backfill_uses_extra_nodes(self):
        # head needs 4; extra at shadow = 1, so a 1-core long job may run
        workload = wl(
            submit=[0, 1, 2],
            cores=[3, 4, 1],
            runtime=[100, 50, 1000],
            walltime=[100, 50, 1000],
        )
        res = simulate(workload, capacity=5, backfill=EASY)
        # capacity 5, j0 uses 3. head j1 needs 4 -> shadow 100, extra 1.
        assert res.start[2] == 2.0

    def test_easy_extra_core_accounting(self):
        # Pins the EASY reservation ledger against engine refactors:
        # window-fitting backfills must NOT erode the head's ``extra``
        # budget, while shadow-crossing (extra-consuming) backfills MUST
        # decrement it so later jobs cannot overdraw the reservation.
        #
        # capacity 10; j0 (6 cores, 100s) runs at t=0, so head j1
        # (8 cores) is promised shadow=100 with extra=2.
        workload = wl(
            submit=[0, 1, 1, 2, 3],
            cores=[6, 8, 4, 2, 2],
            runtime=[100, 10, 60, 200, 200],
            walltime=[100, 10, 60, 200, 200],
        )
        res = simulate(workload, capacity=10, backfill=EASY)
        # j2 ends at 61 <= shadow: a pure window fit, leaving extra at 2
        assert res.start[2] == 1.0 and res.backfilled[2]
        # j3 crosses the shadow but fits in extra (2 <= 2): consumes it all
        assert res.start[3] == 61.0 and res.backfilled[3]
        # j4 also crosses the shadow; extra is now 0, so it must wait --
        # if extra were not decremented, j4 would start at 61 and delay
        # the head past its promise
        assert not res.backfilled[4]
        assert res.start[4] > res.start[1]
        # the head starts exactly at its promised shadow time
        assert res.promised[1] == 100.0
        assert res.start[1] == 100.0
        m = compute_metrics(res)
        assert m.violation_count == 0 and m.violation == 0.0


class TestMetrics:
    def test_bounded_slowdown_floor(self):
        b = bounded_slowdown(np.array([0.0]), np.array([1000.0]))
        assert b[0] == 1.0

    def test_bounded_slowdown_bound_kicks_in(self):
        # 1-second job with 9-second wait: bound=10 caps the denominator
        b = bounded_slowdown(np.array([9.0]), np.array([1.0]))
        assert b[0] == pytest.approx(1.0)

    def test_utilization_full(self):
        workload = wl([0, 0], [2, 2], [100, 100])
        m = compute_metrics(simulate(workload, capacity=4))
        assert m.util == pytest.approx(1.0)

    def test_metrics_as_dict_keys_match_dataclass_fields(self):
        # regression: as_dict used to drop violation_count and n_jobs,
        # silently truncating CLI/export summaries and cached sweep results
        import dataclasses

        from repro.sched import ScheduleMetrics

        m = compute_metrics(simulate(wl([0], [1], [10]), capacity=4))
        d = m.as_dict()
        assert set(d) == {f.name for f in dataclasses.fields(ScheduleMetrics)}
        assert ScheduleMetrics(**d) == m


class TestIntegrationWithTraces:
    def test_simulates_synthetic_theta(self):
        tr = generate_trace("theta", days=3.0, seed=1)
        workload = workload_from_trace(tr)
        res = simulate(workload, tr.system.schedulable_units, "fcfs", EASY)
        m = compute_metrics(res)
        assert 0.1 < m.util <= 1.0
        assert m.wait >= 0.0

    def test_walltime_fallback_for_dl(self):
        tr = generate_trace("helios", days=0.2, seed=1)
        workload = workload_from_trace(tr, walltime_fallback_factor=2.0)
        assert np.all(workload.walltime >= workload.runtime)

    def test_relaxed_beats_easy_on_wait(self):
        tr = generate_trace("theta", days=5.0, seed=2)
        workload = workload_from_trace(tr)
        cap = tr.system.schedulable_units
        m_easy = compute_metrics(simulate(workload, cap, "fcfs", EASY))
        m_rel = compute_metrics(simulate(workload, cap, "fcfs", relaxed(0.1)))
        # relaxation must not be catastrophically worse; usually better
        assert m_rel.wait <= m_easy.wait * 1.2

    def test_adaptive_reduces_violation(self):
        tr = generate_trace("theta", days=5.0, seed=2)
        workload = workload_from_trace(tr)
        cap = tr.system.schedulable_units
        m_rel = compute_metrics(simulate(workload, cap, "fcfs", relaxed(0.1)))
        m_ada = compute_metrics(
            simulate(workload, cap, "fcfs", adaptive_relaxed(0.1))
        )
        if m_rel.violation > 0:
            assert m_ada.violation <= m_rel.violation
