"""Tests for the repro.obs observability layer.

Three layers of coverage:

* unit behaviour of the building blocks (tracers, metrics instruments,
  profiler spans, the event audit);
* the **identity guarantee**: every engine must produce bit-identical
  results with and without observability sinks attached;
* property-based invariants of captured event streams (hypothesis): for
  random workloads, every traced run must pass :func:`check_events` —
  monotone sim-time, every start preceded by its submit, exact core
  conservation — on all engines and backfill modes.
"""

import json
import math
import re

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    CAPACITY_EVENTS,
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    JsonlTracer,
    Metrics,
    NullTracer,
    Profiler,
    RingBufferTracer,
    check_events,
    make_event,
    read_jsonl,
    render_timeline,
    summarize_events,
    utilization_series,
)
from repro.obs import events as ev
from repro.sched import (
    EASY,
    FaultConfig,
    SimWorkload,
    adaptive_relaxed,
    relaxed,
    simulate,
    simulate_conservative,
    simulate_with_faults,
)

CAPACITY = 16


def make_workload(n=60, seed=0, span=3000.0):
    rng = np.random.default_rng(seed)
    runtime = rng.lognormal(4.0, 1.0, n)
    return SimWorkload(
        submit=np.sort(rng.uniform(0.0, span, n)),
        runtime=runtime,
        walltime=runtime * rng.uniform(1.0, 3.0, n),
        cores=rng.integers(1, CAPACITY + 1, n).astype(np.int64),
        user=rng.integers(0, 5, n).astype(np.int64),
    )


@st.composite
def workloads(draw):
    n = draw(st.integers(2, 25))
    submit = np.cumsum(
        np.array(draw(st.lists(st.floats(0.0, 50.0), min_size=n, max_size=n)))
    )
    cores = np.array(
        draw(st.lists(st.integers(1, CAPACITY), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    runtime = np.array(
        draw(st.lists(st.floats(1.0, 500.0), min_size=n, max_size=n))
    )
    factor = np.array(
        draw(st.lists(st.floats(1.0, 3.0), min_size=n, max_size=n))
    )
    return SimWorkload(
        submit=submit,
        cores=cores,
        runtime=runtime,
        walltime=runtime * factor,
        user=np.zeros(n, dtype=np.int64),
    )


FAULTS = FaultConfig(
    node_mtbf=400.0,
    node_mttr=100.0,
    n_nodes=4,
    fail_prob=0.05,
    kill_prob=0.02,
    max_attempts=3,
    backoff_base=10.0,
    checkpoint_interval=50.0,
    seed=7,
)


# --------------------------------------------------------------------- events
class TestEvents:
    def test_make_event_shape(self):
        e = make_event(ev.START, 12.5, 3, cores=4, free=12)
        assert e == {"kind": "start", "t": 12.5, "job": 3, "cores": 4, "free": 12}

    def test_make_event_omits_negative_job(self):
        e = make_event(ev.RUN_START, 0.0, capacity=16)
        assert "job" not in e

    def test_capacity_events_subset(self):
        assert CAPACITY_EVENTS <= ev.EVENT_KINDS


# -------------------------------------------------------------------- tracers
class TestTracers:
    def test_null_tracer_disabled(self):
        t = NullTracer()
        assert not t.enabled
        t.emit(ev.START, 0.0, 1)  # harmless no-op
        t.close()

    def test_ring_buffer_capture_and_drop(self):
        t = RingBufferTracer(capacity=3)
        for i in range(5):
            t.emit(ev.SUBMIT, float(i), i)
        assert len(t.events) == 3
        assert t.dropped == 2
        assert [e["t"] for e in t.events] == [2.0, 3.0, 4.0]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlTracer(path) as t:
            t.emit(ev.RUN_START, 0.0, capacity=CAPACITY)
            t.emit(ev.SUBMIT, 1.0, 0, cores=2)
            assert t.count == 2
        records = read_jsonl(path)
        assert [r["kind"] for r in records] == ["run_start", "submit"]
        assert records[1] == {"kind": "submit", "t": 1.0, "job": 0, "cores": 2}

    def test_ring_buffer_to_jsonl(self, tmp_path):
        t = RingBufferTracer()
        t.emit(ev.FINISH, 5.0, 2, cores=1, free=CAPACITY)
        path = tmp_path / "dump.jsonl"
        t.to_jsonl(path)
        assert read_jsonl(path) == t.events

    def test_close_flushes_non_owned_stream(self, tmp_path):
        """Regression: caller-supplied handles must be flushed on close.

        close() used to do nothing for non-owned files, so tail events
        could sit in Python's write buffer until the caller remembered to
        flush — here the handle is deliberately left unflushed.
        """
        path = tmp_path / "events.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            t = JsonlTracer(fh)
            t.emit(ev.SUBMIT, 1.0, 0, cores=2)
            t.close()
            # flushed to disk while the caller's handle is still open...
            assert [r["kind"] for r in read_jsonl(path)] == ["submit"]
            # ...and the caller's handle was NOT closed
            assert not fh.closed
        assert fh.closed

    def test_close_is_idempotent_either_ownership(self, tmp_path):
        owned = JsonlTracer(tmp_path / "owned.jsonl")
        owned.emit(ev.SUBMIT, 1.0, 0)
        owned.close()
        owned.close()  # second close: no error

        with open(tmp_path / "foreign.jsonl", "w", encoding="utf-8") as fh:
            t = JsonlTracer(fh)
            t.close()
            t.close()
        t.close()  # even after the caller closed their own stream


# -------------------------------------------------------------------- metrics
class TestMetrics:
    def test_counter_monotone(self):
        c = Counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set(self):
        g = Gauge("g")
        g.set(7)
        assert g.value == 7.0

    def test_histogram_buckets(self):
        h = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        assert h.min == 0.5 and h.max == 500.0
        assert h.mean == pytest.approx(555.5 / 4)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))

    def test_histogram_quantile(self):
        h = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for _ in range(9):
            h.observe(5.0)
        h.observe(5000.0)
        assert h.approx_quantile(0.5) == 10.0
        assert h.approx_quantile(1.0) == 5000.0
        assert math.isnan(Histogram("e").approx_quantile(0.5))

    def test_default_buckets_log_spaced(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-3)
        ratios = [b2 / b1 for b1, b2 in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])]
        assert all(r == pytest.approx(10 ** (1 / 3)) for r in ratios)

    def test_registry_get_or_create(self):
        m = Metrics()
        assert m.counter("a") is m.counter("a")
        with pytest.raises(ValueError):
            m.gauge("a")
        assert "a" in m and m["a"].value == 0.0

    def test_sampling_grid(self):
        m = Metrics(sample_interval=10.0)
        g = m.gauge("q")
        g.set(1)
        m.sample(0.0)  # anchors the grid
        g.set(2)
        m.sample(25.0)  # crosses 10 and 20
        assert m.series_times == [0.0, 10.0, 20.0]
        assert m.series["q"] == [1.0, 2.0, 2.0]

    def test_sampling_disabled(self):
        m = Metrics()
        m.gauge("q").set(1)
        m.sample(100.0)
        assert m.series_times == []

    def test_to_prometheus_format(self):
        m = Metrics()
        m.counter("jobs_total", "all jobs").inc(3)
        m.gauge("depth").set(2)
        h = m.histogram("wait", bounds=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        text = m.to_prometheus()
        assert "# HELP jobs_total all jobs" in text
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 3.0" in text
        assert 'wait_bucket{le="1.0"} 1' in text
        assert 'wait_bucket{le="10.0"} 2' in text
        assert 'wait_bucket{le="+Inf"} 2' in text
        assert "wait_sum 5.5" in text
        assert "wait_count 2" in text

    def test_to_json_is_nan_free(self):
        m = Metrics(sample_interval=5.0)
        m.histogram("empty")
        payload = json.loads(m.to_json())
        assert payload["histograms"]["empty"]["min"] is None
        json.dumps(payload, allow_nan=False)  # must not raise

    def test_prometheus_sanitizes_metric_names(self):
        m = Metrics()
        m.counter("sim.jobs/started-total").inc()
        m.gauge("0depth").set(1)
        text = m.to_prometheus()
        assert "sim_jobs_started_total 1.0" in text
        assert "# TYPE sim_jobs_started_total counter" in text
        assert "_0depth 1.0" in text
        # every exposed name obeys the exposition grammar
        for line in text.splitlines():
            if line.startswith("#"):
                name = line.split()[2]
            else:
                name = line.split("{")[0].split()[0]
            assert re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", name), line

    def test_prometheus_buckets_are_cumulative(self):
        m = Metrics()
        h = m.histogram("wait", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 0.6, 5.0, 50.0, 500.0):
            h.observe(v)
        text = m.to_prometheus()
        # raw per-bucket counts are [2, 1, 1, 1]; exported ones cumulate
        assert 'wait_bucket{le="1.0"} 2' in text
        assert 'wait_bucket{le="10.0"} 3' in text
        assert 'wait_bucket{le="100.0"} 4' in text
        assert 'wait_bucket{le="+Inf"} 5' in text
        # the +Inf bucket always equals the total observation count
        assert "wait_count 5" in text
        cum = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("wait_bucket")
        ]
        assert cum == sorted(cum)

    def test_prometheus_infinite_bounds_format(self):
        m = Metrics()
        h = m.histogram("x", bounds=(1.0, math.inf))
        h.observe(0.5)
        h.observe(math.inf)
        text = m.to_prometheus()
        assert 'x_bucket{le="+Inf"} 2' in text
        assert "x_sum +Inf" in text

    def test_approx_quantile_edge_cases(self):
        empty = Histogram("e", bounds=(1.0, 10.0))
        assert math.isnan(empty.approx_quantile(0.0))
        assert math.isnan(empty.approx_quantile(1.0))

        single = Histogram("s", bounds=(1.0, 10.0))
        single.observe(5.0)
        # one observation: every quantile lands in its bucket
        assert single.approx_quantile(0.0) == 10.0
        assert single.approx_quantile(0.5) == 10.0
        assert single.approx_quantile(1.0) == 10.0

        h = Histogram("h", bounds=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5000.0)  # overflow bucket: estimate falls back to max
        assert h.approx_quantile(0.0) == 1.0
        assert h.approx_quantile(1.0) == 5000.0

        with pytest.raises(ValueError):
            h.approx_quantile(-0.1)
        with pytest.raises(ValueError):
            h.approx_quantile(1.1)


# ------------------------------------------------------------------ profiling
class TestProfiler:
    def test_spans_accumulate(self):
        p = Profiler()
        for _ in range(3):
            with p.span("work"):
                pass
        calls, total = p.stats("work")
        assert calls == 3
        assert total >= 0.0
        assert p.profiled_seconds == pytest.approx(total)

    def test_as_dict_and_report(self):
        p = Profiler()
        with p.span("alpha"):
            pass
        d = p.as_dict()
        assert "alpha" in d["spans"]
        assert d["spans"]["alpha"]["calls"] == 1
        assert "alpha" in p.report()


# ---------------------------------------------------------------- event audit
class TestCheckEvents:
    def test_detects_time_regression(self):
        stream = [make_event(ev.SUBMIT, 5.0, 0), make_event(ev.SUBMIT, 1.0, 1)]
        assert any("backwards" in v for v in check_events(stream))

    def test_detects_start_without_submit(self):
        stream = [make_event(ev.START, 1.0, 0, cores=1, free=15)]
        assert any("without a submit" in v for v in check_events(stream, CAPACITY))

    def test_detects_core_leak(self):
        stream = [
            make_event(ev.RUN_START, 0.0, capacity=4),
            make_event(ev.SUBMIT, 0.0, 0),
            make_event(ev.START, 0.0, 0, cores=2, free=2),
            make_event(ev.FINISH, 9.0, 0, cores=1, free=3),
        ]
        assert any("released" in v for v in check_events(stream))

    def test_detects_ledger_mismatch(self):
        stream = [
            make_event(ev.RUN_START, 0.0, capacity=4),
            make_event(ev.SUBMIT, 0.0, 0),
            make_event(ev.START, 0.0, 0, cores=2, free=3),
        ]
        assert any("ledger mismatch" in v for v in check_events(stream))

    def test_clean_stream_passes(self):
        stream = [
            make_event(ev.RUN_START, 0.0, capacity=4),
            make_event(ev.SUBMIT, 0.0, 0),
            make_event(ev.START, 0.0, 0, cores=2, free=2),
            make_event(ev.FINISH, 9.0, 0, cores=2, free=4),
        ]
        assert check_events(stream) == []


# -------------------------------------------------------- identity guarantee
class TestNoOpIdentity:
    """Instrumented runs must be bit-identical to uninstrumented ones."""

    def sinks(self):
        return dict(
            tracer=RingBufferTracer(),
            metrics=Metrics(sample_interval=100.0),
            profiler=Profiler(),
        )

    def test_easy_engine_identity(self):
        wl = make_workload(seed=1)
        for bf in (EASY, relaxed(0.2), adaptive_relaxed(0.2)):
            base = simulate(wl, CAPACITY, "fcfs", bf)
            obs = simulate(wl, CAPACITY, "fcfs", bf, **self.sinks())
            assert np.array_equal(obs.start, base.start)
            assert np.array_equal(obs.promised, base.promised, equal_nan=True)
            assert np.array_equal(obs.backfilled, base.backfilled)

    def test_conservative_engine_identity(self):
        wl = make_workload(seed=2)
        base = simulate_conservative(wl, CAPACITY)
        obs = simulate_conservative(wl, CAPACITY, **self.sinks())
        assert np.array_equal(obs.start, base.start)
        assert np.array_equal(obs.promised, base.promised, equal_nan=True)

    def test_fault_engine_identity(self):
        wl = make_workload(seed=3)
        base = simulate_with_faults(wl, CAPACITY, "fcfs", EASY, FAULTS)
        obs = simulate_with_faults(
            wl, CAPACITY, "fcfs", EASY, FAULTS, **self.sinks()
        )
        assert np.array_equal(obs.start, base.start)
        assert np.array_equal(obs.end, base.end)
        assert np.array_equal(obs.status, base.status)
        assert np.array_equal(obs.attempt_outcome, base.attempt_outcome)

    def test_null_tracer_emits_nothing_and_matches(self):
        wl = make_workload(seed=4)
        base = simulate(wl, CAPACITY, "fcfs", EASY)
        obs = simulate(wl, CAPACITY, "fcfs", EASY, tracer=NullTracer())
        assert np.array_equal(obs.start, base.start)


# ----------------------------------------------------- stream-level invariants
class TestStreamInvariants:
    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_easy_streams_audit_clean(self, workload):
        for bf in (EASY, adaptive_relaxed(0.2)):
            tracer = RingBufferTracer()
            simulate(workload, CAPACITY, "fcfs", bf, tracer=tracer)
            assert check_events(tracer.events) == []

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_conservative_streams_audit_clean(self, workload):
        tracer = RingBufferTracer()
        simulate_conservative(workload, CAPACITY, tracer=tracer)
        assert check_events(tracer.events) == []

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_fault_streams_audit_clean(self, workload):
        tracer = RingBufferTracer()
        simulate_with_faults(
            workload, CAPACITY, "fcfs", EASY, FAULTS, tracer=tracer
        )
        assert check_events(tracer.events) == []

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_every_start_has_submit_and_counts_match(self, workload):
        tracer = RingBufferTracer()
        simulate(workload, CAPACITY, "fcfs", EASY, tracer=tracer)
        events = tracer.events
        counts = summarize_events(events)
        assert counts["submit"] == workload.n
        assert counts["start"] == workload.n
        assert counts["finish"] == workload.n
        times = [e["t"] for e in events]
        assert times == sorted(times)


# ------------------------------------------------------------------- replay
class TestReplay:
    def traced_run(self):
        wl = make_workload(seed=5)
        tracer = RingBufferTracer()
        res = simulate(wl, CAPACITY, "fcfs", EASY, tracer=tracer)
        return res, tracer.events

    def test_utilization_series_bounded(self):
        _, events = self.traced_run()
        times, used = utilization_series(events)
        assert len(times) == len(used) > 0
        assert np.all(used >= 0) and np.all(used <= CAPACITY)
        assert used[-1] == 0  # everything finished

    def test_utilization_requires_capacity(self):
        with pytest.raises(ValueError):
            utilization_series([make_event(ev.SUBMIT, 0.0, 0)])

    def test_render_timeline(self):
        _, events = self.traced_run()
        text = render_timeline(events, bins=8)
        assert "schedule timeline" in text
        assert f"capacity {CAPACITY}" in text


# ---------------------------------------------------------------- acceptance
class TestAcceptance:
    def test_traced_fault_run_jsonl(self, tmp_path):
        """Acceptance: an ext_resilience-style run emits a parseable JSONL
        stream with submit/start/finish, backfill and fault events whose
        core accounting replays exactly."""
        wl = make_workload(n=250, seed=11, span=20_000.0)
        cfg = FaultConfig.from_workload(
            wl,
            node_mtbf=5_000.0,
            node_mttr=500.0,
            n_nodes=4,
            max_attempts=3,
            backoff_base=30.0,
            seed=3,
        )
        path = tmp_path / "run" / "events.jsonl"
        path.parent.mkdir(parents=True)
        with JsonlTracer(path) as tracer:
            simulate(
                wl, CAPACITY, "fcfs", adaptive_relaxed(0.1),
                faults=cfg, tracer=tracer,
            )
        events = read_jsonl(path)
        counts = summarize_events(events)
        for kind in (ev.RUN_START, ev.SUBMIT, ev.START, ev.FINISH,
                     ev.BACKFILL, ev.NODE_FAIL, ev.RUN_END):
            assert counts.get(kind, 0) > 0, f"no {kind} events captured"
        assert check_events(events) == []
