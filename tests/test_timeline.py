"""Tests for :mod:`repro.obs.timeline` — replay, utilization, rendering.

The load-bearing property ties two independent reconstructions of cluster
usage together: the peak of :func:`utilization_series` (rebuilt purely
from the emitted event stream's ``free`` fields) must equal
:func:`repro.testkit.max_concurrent_usage` (an event sweep over the
*result arrays*, the invariant battery's ground truth).  Any drift between
what the engine does and what it reports surfaces here.

``render_timeline`` output is frozen as a golden under ``tests/goldens/``;
regenerate intentionally with ``REPRO_UPDATE_GOLDENS=1`` (docs/TESTING.md).
"""

import os
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import RingBufferTracer
from repro.obs.timeline import (
    check_events,
    render_timeline,
    summarize_events,
    utilization_series,
)
from repro.sched import EASY, NO_BACKFILL, SimWorkload, simulate
from repro.testkit import max_concurrent_usage

CAPACITY = 16
GOLDEN = Path(__file__).parent / "goldens" / "timeline.txt"


@st.composite
def workloads(draw):
    n = draw(st.integers(2, 30))
    submit = np.cumsum(
        np.array(draw(st.lists(st.floats(0.0, 50.0), min_size=n, max_size=n)))
    )
    cores = np.array(
        draw(st.lists(st.integers(1, CAPACITY), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    runtime = np.array(
        draw(st.lists(st.floats(1.0, 500.0), min_size=n, max_size=n))
    )
    return SimWorkload(
        submit=submit,
        cores=cores,
        runtime=runtime,
        walltime=runtime * 1.5,
        user=np.zeros(n, dtype=np.int64),
    )


def traced_run(workload, backfill=EASY):
    tracer = RingBufferTracer()
    result = simulate(workload, CAPACITY, "fcfs", backfill, tracer=tracer)
    return result, tracer.events


class TestUtilizationSeries:
    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_peak_matches_invariant_battery(self, workload):
        """Event-replayed peak usage == the result-array event sweep."""
        for bf in (NO_BACKFILL, EASY):
            result, events = traced_run(workload, bf)
            assert check_events(events) == []
            _, used = utilization_series(events)
            assert int(used.max()) == max_concurrent_usage(
                result.start, workload.runtime, workload.cores
            )

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_series_bounded_and_drains_to_zero(self, workload):
        _, events = traced_run(workload)
        times, used = utilization_series(events)
        assert np.all(used >= 0) and np.all(used <= CAPACITY)
        assert np.all(np.diff(times) >= 0)
        # the final capacity event is the last job's release
        assert used[-1] == 0

    def test_capacity_override_and_missing_capacity(self):
        _, events = traced_run(wl_fixed())
        stripped = [e for e in events if e.get("kind") != "run_start"]
        with pytest.raises(ValueError):
            utilization_series(stripped)
        _, used = utilization_series(stripped, capacity=CAPACITY)
        assert used.max() <= CAPACITY


def wl_fixed(n=40, seed=11):
    rng = np.random.default_rng(seed)
    submit = np.sort(rng.uniform(0, 3600.0, n))
    runtime = rng.uniform(120.0, 1800.0, n)
    return SimWorkload(
        submit=submit,
        cores=rng.integers(1, 8, n).astype(np.int64),
        runtime=runtime,
        walltime=runtime * 1.5,
        user=np.zeros(n, dtype=np.int64),
    )


class TestRenderTimeline:
    def test_golden(self):
        """render_timeline bytes are frozen; drift means a real change."""
        _, events = traced_run(wl_fixed())
        got = render_timeline(events, bins=12, width=20) + "\n"
        if os.environ.get("REPRO_UPDATE_GOLDENS", "") not in ("", "0"):
            GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN.write_text(got)
            pytest.skip(f"regenerated {GOLDEN}")
        if not GOLDEN.exists():
            pytest.fail(
                f"golden file {GOLDEN} missing; generate with "
                "REPRO_UPDATE_GOLDENS=1 (see docs/TESTING.md)"
            )
        assert got == GOLDEN.read_text(), (
            f"timeline output drifted from {GOLDEN}; if intended, "
            "regenerate with REPRO_UPDATE_GOLDENS=1 and commit the diff"
        )

    def test_empty_stream_renders_placeholder(self):
        assert "no capacity events" in render_timeline(
            [{"kind": "run_start", "t": 0.0, "capacity": 4}]
        )

    def test_bin_event_counts_sum_to_stream_counts(self):
        _, events = traced_run(wl_fixed())
        rendered = render_timeline(events, bins=8)
        counts = summarize_events(events)
        # per-bin submit/start/finish columns must add up to the stream
        rows = [
            line.split()
            for line in rendered.splitlines()
            if line.startswith("+")
        ]
        for col, kind in ((-4, "submit"), (-3, "start"), (-2, "finish")):
            assert sum(int(r[col]) for r in rows) == counts[kind]
