"""Tests for the text rendering layer."""

import numpy as np

from repro.viz import bar, percent, render_table, seconds, series_row


class TestFormatters:
    def test_percent(self):
        assert percent(0.5) == "50.0%"
        assert percent(0.123456, digits=2) == "12.35%"
        assert percent(float("nan")) == "-"
        assert percent(None) == "-"

    def test_seconds_scales(self):
        assert seconds(5) == "5.0s"
        assert seconds(90) == "1.5m"
        assert seconds(7200) == "2.0h"
        assert seconds(172800) == "2.0d"
        assert seconds(float("nan")) == "-"

    def test_bar(self):
        assert bar(0.5, width=4) == "##.."
        assert bar(0.0, width=4) == "...."
        assert bar(1.5, width=4) == "####"  # clipped
        assert bar(float("nan"), width=4) == "    "


class TestTable:
    def test_alignment(self):
        out = render_table(["a", "bbbb"], [["xx", "y"], ["z", "wwwww"]])
        lines = out.splitlines()
        assert lines[0].startswith("a ")
        assert all(len(l) <= max(len(x) for x in lines) for l in lines)

    def test_title(self):
        out = render_table(["h"], [["v"]], title="My Title")
        assert out.splitlines()[0] == "My Title"
        assert "=" in out.splitlines()[1]

    def test_empty_rows(self):
        out = render_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_series_row(self):
        row = series_row("name", np.array([1.0, np.nan]))
        assert row == ["name", "1.00", "-"]
