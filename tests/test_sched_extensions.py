"""Tests for scheduler extensions: capacity profile, conservative
backfilling, walltime kills, virtual clusters, predictive backfilling."""

import numpy as np
import pytest

from repro.sched import (
    CapacityProfile,
    SimWorkload,
    compute_metrics,
    simulate,
    simulate_conservative,
    simulate_virtual_clusters,
    simulate_with_predictions,
    workload_from_trace,
)
from repro.sched.virtual import isolation_cost
from repro.traces.synth import generate_trace


def wl(submit, cores, runtime, walltime=None):
    submit = np.asarray(submit, dtype=float)
    runtime = np.asarray(runtime, dtype=float)
    return SimWorkload(
        submit=submit,
        cores=np.asarray(cores, dtype=np.int64),
        runtime=runtime,
        walltime=np.asarray(walltime, dtype=float)
        if walltime is not None
        else runtime,
        user=np.zeros(len(submit), dtype=np.int64),
    )


class TestCapacityProfile:
    def test_initial_free(self):
        p = CapacityProfile(8, now=0.0)
        assert p.free_at(0) == 8
        assert p.earliest_fit(8, 100, 0.0) == 0.0

    def test_from_running(self):
        p = CapacityProfile.from_running(
            10, 0.0, ends=np.array([100.0]), cores=np.array([6])
        )
        assert p.free_at(0) == 4
        assert p.free_at(100) == 10

    def test_earliest_fit_waits_for_release(self):
        p = CapacityProfile.from_running(
            10, 0.0, ends=np.array([100.0]), cores=np.array([6])
        )
        assert p.earliest_fit(4, 10, 0.0) == 0.0
        assert p.earliest_fit(5, 10, 0.0) == 100.0

    def test_fit_spanning_a_dip(self):
        # free: [0,50)=4, [50,80)=1, [80,inf)=10 -> a 4-core 60s job waits
        p = CapacityProfile.from_running(
            10,
            0.0,
            ends=np.array([80.0, 50.0]),
            cores=np.array([3, 3]),
        )
        # from t=0: 10-6=4 free until 50; 50..80 frees 3 -> 7... build again:
        assert p.free_at(0) == 4
        assert p.earliest_fit(5, 10, 0.0) == 50.0

    def test_reserve_consumes(self):
        p = CapacityProfile(4, now=0.0)
        p.reserve(0.0, 100.0, 4)
        assert p.earliest_fit(1, 10, 0.0) == 100.0

    def test_not_before_respected(self):
        p = CapacityProfile(4, now=0.0)
        assert p.earliest_fit(1, 10, 55.5) == 55.5

    def test_over_capacity_raises(self):
        p = CapacityProfile(4, now=0.0)
        with pytest.raises(ValueError):
            p.earliest_fit(5, 10, 0.0)

    def test_negative_profile_guard(self):
        p = CapacityProfile(4, now=0.0)
        p.reserve(0.0, 10.0, 4)
        with pytest.raises(RuntimeError):
            p.reserve(0.0, 10.0, 1)


class TestConservative:
    def test_backfills_into_hole(self):
        # j0 holds 4/5; j1 (head, 5 cores) reserved at t=100; j2 (1 core,
        # 10s) fits the hole without moving j1
        workload = wl(
            submit=[0, 1, 2],
            cores=[4, 5, 1],
            runtime=[100, 50, 10],
        )
        res = simulate_conservative(workload, capacity=5)
        assert res.start[2] == 2.0
        assert res.start[1] == 100.0

    def test_never_delays_any_reservation(self):
        # j2 is long: conservative must NOT backfill it over j1's reservation
        workload = wl(
            submit=[0, 1, 2],
            cores=[4, 5, 1],
            runtime=[100, 50, 500],
        )
        res = simulate_conservative(workload, capacity=5)
        assert res.start[1] == 100.0

    def test_matches_easy_when_unconstrained(self):
        workload = wl([0, 10, 20], [1, 1, 1], [5, 5, 5])
        res = simulate_conservative(workload, capacity=4)
        assert np.allclose(res.start, workload.submit)

    def test_all_jobs_complete_on_random_workload(self):
        tr = generate_trace("theta", days=1.5, seed=8)
        workload = workload_from_trace(tr)
        res = simulate_conservative(workload, tr.system.schedulable_units)
        assert np.all(res.start >= workload.submit)
        m = compute_metrics(res)
        assert 0 < m.util <= 1.0

    def test_promises_never_exceeded(self):
        # conservative reservations are firm: start <= first promise
        tr = generate_trace("theta", days=1.0, seed=9)
        workload = workload_from_trace(tr)
        res = simulate_conservative(workload, tr.system.schedulable_units)
        promised = res.promised[np.isfinite(res.promised)]
        started = res.start[np.isfinite(res.promised)]
        assert np.all(started <= promised + 1e-6)


class TestWalltimeKills:
    def test_kill_truncates_runtime(self):
        workload = wl([0], [1], [100], walltime=[100])
        workload.walltime = np.array([40.0])  # underestimate
        res = simulate(workload, capacity=4, kill_at_walltime=True)
        assert res.workload.runtime[0] == 40.0

    def test_no_kill_when_walltime_covers(self):
        workload = wl([0], [1], [100], walltime=[200])
        res = simulate(workload, capacity=4, kill_at_walltime=True)
        assert res.workload.runtime[0] == 100.0


class TestVirtualClusters:
    @pytest.fixture(scope="class")
    def philly(self):
        return generate_trace("philly", days=4, seed=3)

    def test_partitioned_waits_at_least_pooled(self, philly):
        result = simulate_virtual_clusters(philly, max_jobs=3000)
        assert result.combined.wait >= result.pooled.wait - 1e-9
        assert result.wait_inflation() >= 1.0 or result.pooled.wait == 0

    def test_per_vc_results_cover_all_jobs(self, philly):
        result = simulate_virtual_clusters(philly, max_jobs=3000)
        assert sum(m.n_jobs for m in result.per_vc.values()) == 3000

    def test_isolation_cost_keys(self, philly):
        cost = isolation_cost(simulate_virtual_clusters(philly, max_jobs=1500))
        assert {"wait_partitioned", "wait_pooled", "wait_inflation"} <= set(cost)

    def test_requires_vc_structure(self):
        tr = generate_trace("theta", days=0.5, seed=1)
        with pytest.raises(ValueError, match="virtual-cluster"):
            simulate_virtual_clusters(tr)


class TestPredictive:
    @pytest.fixture(scope="class")
    def outcomes(self):
        tr = generate_trace("theta", days=4, seed=6)
        return simulate_with_predictions(tr, model="lr", max_jobs=1500)

    def test_three_sources(self, outcomes):
        assert set(outcomes) == {"user", "predicted", "oracle"}

    def test_oracle_never_kills(self, outcomes):
        assert outcomes["oracle"].killed_fraction == 0.0
        assert outcomes["oracle"].mean_overestimate == pytest.approx(1.0)

    def test_user_walltimes_never_kill(self, outcomes):
        # HPC traces carry walltimes >= runtime by construction
        assert outcomes["user"].killed_fraction == 0.0

    def test_predictions_overestimate_less_than_users(self, outcomes):
        assert (
            outcomes["predicted"].mean_overestimate
            < outcomes["user"].mean_overestimate
        )

    def test_too_small_rejected(self):
        tr = generate_trace("theta", days=0.5, seed=1, jobs_per_day=60)
        with pytest.raises(ValueError, match="too small"):
            simulate_with_predictions(tr, max_jobs=25)
