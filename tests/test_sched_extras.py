"""Tests for fairshare scheduling, node packing, and schedule rendering."""

import numpy as np
import pytest

from repro.sched import (
    NO_BACKFILL,
    FairSharePolicy,
    NodeCluster,
    SimWorkload,
    get_policy,
    simulate,
    simulate_packed,
)
from repro.viz import render_gantt, render_occupancy


def wl(submit, cores, runtime, user=None):
    submit = np.asarray(submit, dtype=float)
    runtime = np.asarray(runtime, dtype=float)
    return SimWorkload(
        submit=submit,
        cores=np.asarray(cores, dtype=np.int64),
        runtime=runtime,
        walltime=runtime.copy(),
        user=np.asarray(user, dtype=np.int64)
        if user is not None
        else np.zeros(len(submit), dtype=np.int64),
    )


class TestFairShare:
    def test_registered(self):
        assert isinstance(get_policy("fairshare"), FairSharePolicy)

    def test_promotes_light_user(self):
        heavy = wl(
            submit=[0, 0, 0, 0, 1],
            cores=[4, 4, 4, 4, 4],
            runtime=[100] * 5,
            user=[0, 0, 0, 0, 1],
        )
        fcfs = simulate(heavy, 4, "fcfs")
        fair = simulate(heavy, 4, "fairshare")
        assert fair.start[4] < fcfs.start[4]

    def test_equal_usage_falls_back_to_fcfs(self):
        workload = wl([0, 1, 2], [4, 4, 4], [10, 10, 10], user=[0, 1, 2])
        res = simulate(workload, 4, "fairshare")
        assert list(np.argsort(res.start)) == [0, 1, 2]

    def test_usage_decays(self):
        # user 0's early usage is ancient history by the time user 0 and 1
        # compete again -> FCFS order wins
        policy = FairSharePolicy(half_life_hours=0.001)  # ~instant decay
        workload = wl(
            submit=[0, 50_000, 50_000.5],
            cores=[4, 4, 4],
            runtime=[100, 100, 100],
            user=[0, 0, 1],
        )
        res = simulate(workload, 4, policy)
        # with decayed usage, submission order decides: job1 before job2
        assert res.start[1] < res.start[2]

    def test_half_life_validation(self):
        with pytest.raises(ValueError):
            FairSharePolicy(half_life_hours=0.0)


class TestNodeCluster:
    def test_single_node_fit(self):
        c = NodeCluster(n_nodes=2, gpus_per_node=8)
        assert c.can_place(8)
        c.place(0, 5)
        assert c.total_free == 11
        assert c.can_place(8)  # the second node is still empty
        c.place(1, 8)
        assert not c.can_place(4)  # 3 free on node 0 only
        assert c.can_place(3)

    def test_small_job_must_fit_one_node(self):
        c = NodeCluster(n_nodes=2, gpus_per_node=8)
        c.place(0, 5)
        c.place(1, 5)
        # 6 GPUs free in total but max 3 contiguous -> a 4-GPU job can't run
        assert c.total_free == 6
        assert not c.can_place(4)

    def test_large_job_needs_empty_nodes(self):
        c = NodeCluster(n_nodes=3, gpus_per_node=8)
        c.place(0, 1)
        assert not c.can_place(24)  # would need 3 empty nodes
        assert c.can_place(16)

    def test_best_fit_packing(self):
        c = NodeCluster(n_nodes=2, gpus_per_node=8)
        c.place(0, 6)   # node A: 2 free
        c.place(1, 2)   # best fit -> lands on node A, keeping B empty
        assert c.can_place(8)

    def test_release_restores(self):
        c = NodeCluster(n_nodes=1, gpus_per_node=8)
        c.place(0, 8)
        assert not c.can_place(1)
        c.release(0)
        assert c.can_place(8)

    def test_fragmented_gpus(self):
        c = NodeCluster(n_nodes=2, gpus_per_node=8)
        c.place(0, 5)
        c.place(1, 5)
        # both nodes have 3 free; all 6 unusable for an 8-GPU probe
        assert c.fragmented_gpus(8) == 6
        assert c.fragmented_gpus(2) == 0

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            NodeCluster(0, 8)


class TestPackedSimulation:
    def test_packing_can_delay_vs_flat(self):
        # two 5-GPU jobs fill two 8-GPU nodes; a 4-GPU job fits in the flat
        # pool (6 free) but not under packing
        workload = wl([0, 0, 1], [5, 5, 4], [100, 100, 10])
        packed = simulate_packed(workload, n_nodes=2, gpus_per_node=8)
        flat = simulate(workload, 16, "fcfs", NO_BACKFILL)
        assert flat.start[2] == 1.0
        assert packed.start[2] == 100.0

    def test_whole_node_jobs(self):
        workload = wl([0, 0], [16, 8], [50, 50])
        packed = simulate_packed(workload, n_nodes=3, gpus_per_node=8)
        assert list(packed.start) == [0.0, 0.0]

    def test_fragmentation_sampled(self):
        workload = wl([0, 0], [5, 5], [100, 100])
        packed = simulate_packed(workload, n_nodes=2, gpus_per_node=8)
        assert packed.mean_fragmentation > 0

    def test_too_large_job(self):
        with pytest.raises(ValueError):
            simulate_packed(wl([0], [17], [10]), n_nodes=2, gpus_per_node=8)


class TestGantt:
    @pytest.fixture(scope="class")
    def result(self):
        workload = wl([0, 5, 10], [4, 4, 2], [50, 30, 20])
        return simulate(workload, 6)

    def test_gantt_rows(self, result):
        text = render_gantt(result, width=40)
        lines = text.splitlines()
        assert len(lines) == 4  # header + 3 jobs
        assert "#" in lines[1]

    def test_gantt_queue_marks(self, result):
        text = render_gantt(result, width=40)
        assert "." in text  # job 1 queues behind job 0

    def test_gantt_truncation(self):
        workload = wl(np.arange(50.0), np.ones(50), np.ones(50) * 5)
        res = simulate(workload, 100)
        text = render_gantt(res, max_jobs=10)
        assert "more jobs" in text

    def test_occupancy_shape(self, result):
        text = render_occupancy(result, width=40, height=5)
        lines = text.splitlines()
        assert len(lines) == 7  # title + 5 rows + axis
        assert "#" in text
