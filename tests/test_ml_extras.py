"""Tests for the extra ML modules: kNN, quantile boosting, validation."""

import numpy as np
import pytest

from repro.ml import (
    KNeighborsRegressor,
    LinearRegression,
    QuantileGradientBoosting,
    cross_val_score,
    kfold_indices,
    pinball_loss,
    walk_forward_score,
)

RNG = lambda s=0: np.random.default_rng(s)


class TestKNN:
    def test_exact_on_training_points_k1(self):
        X = np.arange(10.0)[:, None]
        y = X[:, 0] ** 2
        m = KNeighborsRegressor(k=1).fit(X, y)
        assert np.allclose(m.predict(X), y)

    def test_smooths_with_larger_k(self):
        rng = RNG(1)
        X = rng.uniform(-1, 1, size=(300, 1))
        y = X[:, 0] + 0.5 * rng.normal(size=300)
        rough = KNeighborsRegressor(k=1).fit(X, y).predict(X)
        smooth = KNeighborsRegressor(k=50).fit(X, y).predict(X)
        assert smooth.std() < rough.std()

    def test_quantile_mode_above_mean(self):
        rng = RNG(2)
        X = np.zeros((500, 1))
        y = rng.exponential(1.0, 500)
        mean_pred = KNeighborsRegressor(k=500).fit(X, y).predict(X[:1])
        q_pred = KNeighborsRegressor(k=500, quantile=0.9).fit(X, y).predict(X[:1])
        assert q_pred[0] > mean_pred[0]

    def test_k_larger_than_train_clamped(self):
        X = np.arange(3.0)[:, None]
        m = KNeighborsRegressor(k=10).fit(X, np.array([1.0, 2.0, 3.0]))
        assert m.predict(X)[0] == pytest.approx(2.0)

    def test_chunking_consistency(self):
        rng = RNG(3)
        X = rng.normal(size=(200, 3))
        y = rng.normal(size=200)
        big = KNeighborsRegressor(k=5, chunk=1000).fit(X, y).predict(X)
        small = KNeighborsRegressor(k=5, chunk=7).fit(X, y).predict(X)
        assert np.allclose(big, small)

    def test_validation(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(k=0)
        with pytest.raises(ValueError):
            KNeighborsRegressor(quantile=1.5)
        with pytest.raises(RuntimeError):
            KNeighborsRegressor().predict(np.zeros((1, 1)))


class TestQuantileBoosting:
    def test_coverage_near_target(self):
        rng = RNG(4)
        X = rng.uniform(-1, 1, size=(1500, 1))
        y = X[:, 0] + rng.normal(0, 0.5, 1500)
        for q in (0.5, 0.9):
            m = QuantileGradientBoosting(q=q, n_estimators=60).fit(X, y)
            coverage = float(np.mean(y <= m.predict(X)))
            assert coverage == pytest.approx(q, abs=0.10)

    def test_higher_quantile_higher_predictions(self):
        rng = RNG(5)
        X = rng.normal(size=(500, 2))
        y = rng.exponential(2.0, 500)
        p50 = QuantileGradientBoosting(q=0.5, n_estimators=40).fit(X, y).predict(X)
        p90 = QuantileGradientBoosting(q=0.9, n_estimators=40).fit(X, y).predict(X)
        assert p90.mean() > p50.mean()

    def test_pinball_loss_asymmetry(self):
        y = np.array([10.0])
        over = pinball_loss(y, np.array([12.0]), q=0.9)
        under = pinball_loss(y, np.array([8.0]), q=0.9)
        assert under > over  # q=0.9 punishes underestimates 9x harder

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            QuantileGradientBoosting(q=0.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            QuantileGradientBoosting().predict(np.zeros((1, 1)))


class TestValidation:
    def test_kfold_partition(self):
        folds = kfold_indices(20, k=4, rng=RNG())
        assert len(folds) == 4
        all_test = np.sort(np.concatenate([t for _, t in folds]))
        assert np.array_equal(all_test, np.arange(20))
        for train, test in folds:
            assert len(np.intersect1d(train, test)) == 0

    def test_kfold_validation(self):
        with pytest.raises(ValueError):
            kfold_indices(5, k=1)
        with pytest.raises(ValueError):
            kfold_indices(3, k=10)

    def test_cross_val_scores_reasonable(self):
        rng = RNG(6)
        X = rng.normal(size=(200, 2))
        y = X @ np.array([1.0, -1.0]) + 0.1 * rng.normal(size=200)
        scores = cross_val_score(LinearRegression, X, y, k=4, rng=RNG(0))
        assert len(scores) == 4
        assert np.all(scores < 0.05)

    def test_walk_forward_chronological(self):
        # target drifts over time: early-trained folds must err more on
        # later data than a model would in-sample
        n = 400
        X = np.arange(n, dtype=float)[:, None]
        y = 0.01 * np.arange(n) ** 1.2
        scores = walk_forward_score(LinearRegression, X, y, n_folds=3)
        assert len(scores) == 3
        assert np.all(scores >= 0)

    def test_walk_forward_too_small(self):
        with pytest.raises(ValueError):
            walk_forward_score(LinearRegression, np.zeros((5, 1)), np.zeros(5), n_folds=10)
