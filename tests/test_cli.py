"""Tests for the top-level CLI and the markdown report generator."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.report import build_report, write_report
from repro.core.study import CrossSystemStudy
from repro.traces.synth import generate_trace


@pytest.fixture(scope="module")
def swf_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("swf") / "theta.swf"
    assert main(["generate", "theta", "-o", str(path), "--days", "2", "--seed", "1"]) == 0
    return path


class TestCli:
    def test_generate_writes_swf(self, swf_path):
        assert swf_path.exists()
        assert swf_path.read_text().startswith("; Computer:")

    def test_validate_clean(self, swf_path, capsys):
        assert main(["validate", str(swf_path)]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_validate_broken(self, tmp_path, capsys):
        bad = tmp_path / "bad.swf"
        # 18-field line with negative runtime (field 4)
        bad.write_text("1 0 0 -5 4 -1 -1 4 100 -1 1 1 -1 -1 -1 -1 -1 -1\n")
        # runtime is clamped non-negative on parse; craft oversize instead
        bad.write_text(
            "; MaxProcs: 4\n"
            "1 0 0 5 400000000 -1 -1 400000000 100 -1 1 1 -1 -1 -1 -1 -1 -1\n"
        )
        assert main(["validate", str(bad)]) == 1
        assert "oversized" in capsys.readouterr().out

    def test_analyze_summary(self, swf_path, capsys):
        assert main(["analyze", str(swf_path)]) == 0
        out = capsys.readouterr().out
        assert "median runtime" in out

    def test_analyze_report(self, swf_path, tmp_path, capsys):
        report = tmp_path / "report.md"
        assert main(["analyze", str(swf_path), "--report", str(report)]) == 0
        text = report.read_text()
        assert text.startswith("# Analysis of")
        assert "## Takeaways" in text

    def test_simulate(self, swf_path, capsys):
        assert main(
            [
                "simulate",
                str(swf_path),
                "--backfill",
                "relaxed",
                "--relax",
                "0.2",
                "--max-jobs",
                "150",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "utilization" in out and "fcfs + relaxed" in out

    def test_study_prints_takeaways(self, capsys):
        assert main(["study", "--days", "1", "--seed", "3"]) == 0
        assert "Takeaway 1" in capsys.readouterr().out

    def test_study_report(self, tmp_path, capsys):
        report = tmp_path / "study.md"
        assert main(["study", "--days", "1", "--seed", "3", "--report", str(report)]) == 0
        assert report.exists()

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliObservability:
    def test_trace_out_creates_nested_dirs(self, swf_path, tmp_path, capsys):
        out = tmp_path / "deeply" / "nested" / "events.jsonl"
        assert main(
            [
                "simulate", str(swf_path),
                "--max-jobs", "100",
                "--trace-out", str(out),
            ]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        events = [json.loads(line) for line in out.read_text().splitlines()]
        kinds = {e["kind"] for e in events}
        assert {"run_start", "submit", "start", "finish", "run_end"} <= kinds

    def test_metrics_out_json(self, swf_path, tmp_path):
        out = tmp_path / "metrics.json"
        assert main(
            [
                "simulate", str(swf_path),
                "--max-jobs", "100",
                "--metrics-out", str(out),
                "--metrics-interval", "1800",
            ]
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["summary"]["n_jobs"] == 100
        assert payload["metrics"]["counters"]["sim_jobs_started_total"] == 100
        assert payload["metrics"]["series"]["interval"] == 1800.0

    def test_metrics_out_prometheus(self, swf_path, tmp_path):
        out = tmp_path / "metrics.prom"
        assert main(
            [
                "simulate", str(swf_path),
                "--max-jobs", "100",
                "--metrics-out", str(out),
            ]
        ) == 0
        text = out.read_text()
        assert "# TYPE sim_jobs_started_total counter" in text
        assert 'sim_wait_seconds_bucket{le="+Inf"}' in text

    def test_profile_prints_breakdown(self, swf_path, capsys):
        assert main(
            ["simulate", str(swf_path), "--max-jobs", "100", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "hot-path wall-time breakdown" in out
        assert "policy_sort" in out

    def test_traced_fault_run(self, swf_path, tmp_path):
        out = tmp_path / "fault-events.jsonl"
        assert main(
            [
                "simulate", str(swf_path),
                "--max-jobs", "150",
                "--mtbf-hours", "6",
                "--retries", "2",
                "--trace-out", str(out),
            ]
        ) == 0
        events = [json.loads(line) for line in out.read_text().splitlines()]
        kinds = {e["kind"] for e in events}
        assert "node_fail" in kinds

    def test_trace_out_parent_is_file(self, swf_path, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        assert main(
            [
                "simulate", str(swf_path),
                "--max-jobs", "50",
                "--trace-out", str(blocker / "events.jsonl"),
            ]
        ) == 2
        err = capsys.readouterr().err
        assert "not a directory" in err

    def test_metrics_out_is_directory(self, swf_path, tmp_path, capsys):
        assert main(
            [
                "simulate", str(swf_path),
                "--max-jobs", "50",
                "--metrics-out", str(tmp_path),
            ]
        ) == 2
        assert "it is a directory" in capsys.readouterr().err


class TestCliPolicySweep:
    def test_multi_policy_table(self, swf_path, capsys):
        assert main(
            [
                "simulate", str(swf_path),
                "--max-jobs", "150",
                "--policy", "fcfs,sjf",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "policy sweep + easy" in out
        assert "fcfs" in out and "sjf" in out

    def test_single_policy_output_unchanged(self, swf_path, capsys):
        # the runner path must render exactly the legacy single-run table
        assert main(["simulate", str(swf_path), "--max-jobs", "150"]) == 0
        out = capsys.readouterr().out
        assert "Theta: fcfs + easy" in out
        assert "utilization" in out

    def test_cache_warm_run_reports_hits(self, swf_path, tmp_path, capsys):
        argv = [
            "simulate", str(swf_path),
            "--max-jobs", "150",
            "--policy", "fcfs,sjf",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 hit(s), 2 miss(es)" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "2 hit(s), 0 miss(es)" in warm
        # identical tables either way
        assert cold.split("(cache")[0] == warm.split("(cache")[0]

    def test_no_cache_flag_disables_cache(self, swf_path, tmp_path, capsys):
        assert main(
            [
                "simulate", str(swf_path),
                "--max-jobs", "100",
                "--cache-dir", str(tmp_path / "cache"),
                "--no-cache",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "hit(s)" not in out
        assert not (tmp_path / "cache").exists()

    def test_parallel_matches_serial(self, swf_path, capsys):
        argv = ["simulate", str(swf_path), "--max-jobs", "150",
                "--policy", "fcfs,sjf,f1"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_obs_flags_reject_multi_policy(self, swf_path, capsys):
        assert main(
            [
                "simulate", str(swf_path),
                "--max-jobs", "50",
                "--policy", "fcfs,sjf",
                "--profile",
            ]
        ) == 2
        assert "single run" in capsys.readouterr().err

    def test_bad_jobs_rejected(self, swf_path, capsys):
        assert main(
            ["simulate", str(swf_path), "--jobs", "0", "--max-jobs", "50"]
        ) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_empty_policy_rejected(self, swf_path, capsys):
        assert main(
            ["simulate", str(swf_path), "--policy", ",", "--max-jobs", "50"]
        ) == 2
        assert "--policy" in capsys.readouterr().err

    def test_simulate_help_documents_cache_layout(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--help"])
        # argparse line-wraps help, so compare with whitespace stripped
        out = "".join(capsys.readouterr().out.split())
        assert "<cache-dir>/<2-hex-prefix>/<sha256-fingerprint>.json" in out


class TestCliCrashSafety:
    def test_bad_task_timeout_rejected(self, swf_path, capsys):
        assert main(
            ["simulate", str(swf_path), "--max-jobs", "50",
             "--task-timeout", "0"]
        ) == 2
        assert "--task-timeout" in capsys.readouterr().err

    def test_bad_task_retries_rejected(self, swf_path, capsys):
        assert main(
            ["simulate", str(swf_path), "--max-jobs", "50",
             "--task-retries", "0"]
        ) == 2
        assert "--task-retries" in capsys.readouterr().err

    def test_resume_requires_journal(self, swf_path, capsys):
        assert main(
            ["simulate", str(swf_path), "--max-jobs", "50", "--resume"]
        ) == 2
        assert "--journal" in capsys.readouterr().err

    def test_obs_flags_reject_crash_safety(self, swf_path, tmp_path, capsys):
        assert main(
            ["simulate", str(swf_path), "--max-jobs", "50", "--profile",
             "--journal", str(tmp_path / "j.jsonl")]
        ) == 2
        assert "harden" in capsys.readouterr().err

    def test_journal_records_and_resumes(self, swf_path, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        argv = ["simulate", str(swf_path), "--max-jobs", "150",
                "--policy", "fcfs,sjf", "--journal", str(journal)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 cell(s) recorded" in first
        assert main(argv + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "0 cell(s) recorded" in resumed
        # identical tables: the resume replayed, it didn't recompute
        assert first.split("(journal")[0] == resumed.split("(journal")[0]

    def test_existing_journal_needs_resume_flag(self, swf_path, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        argv = ["simulate", str(swf_path), "--max-jobs", "100",
                "--journal", str(journal)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 2
        assert "--resume" in capsys.readouterr().err

    def test_retry_flags_accepted_on_clean_run(self, swf_path, capsys):
        assert main(
            ["simulate", str(swf_path), "--max-jobs", "100",
             "--policy", "fcfs,sjf", "--jobs", "2",
             "--task-timeout", "120", "--on-error", "retry",
             "--task-retries", "3", "--retry-backoff", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "policy sweep" in out


class TestCliRunTelemetry:
    def test_run_log_records_every_cell(self, swf_path, tmp_path, capsys):
        log = tmp_path / "runs.jsonl"
        argv = [
            "simulate", str(swf_path),
            "--max-jobs", "150",
            "--policy", "fcfs,sjf",
            "--run-log", str(log),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert f"logged 2 run record(s) to {log}" in out
        records = [json.loads(line) for line in log.read_text().splitlines()]
        assert [r["label"] for r in records] == ["fcfs", "sjf"]
        assert all(r["fingerprint"] and not r["cached"] for r in records)

    def test_run_log_does_not_change_tables(self, swf_path, tmp_path, capsys):
        argv = ["simulate", str(swf_path), "--max-jobs", "150",
                "--policy", "fcfs,sjf"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--run-log", str(tmp_path / "runs.jsonl")]) == 0
        logged = capsys.readouterr().out
        assert logged.split("logged")[0] == plain

    def test_progress_jsonl_events_on_stderr(self, swf_path, capsys):
        assert main(
            [
                "simulate", str(swf_path),
                "--max-jobs", "150",
                "--policy", "fcfs,sjf",
                "--progress", "jsonl",
            ]
        ) == 0
        events = [
            json.loads(line) for line in capsys.readouterr().err.splitlines()
        ]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "sweep_start"
        assert kinds.count("task_done") == 2
        assert kinds[-1] == "sweep_end"

    def test_telemetry_conflicts_with_obs_flags(self, swf_path, tmp_path, capsys):
        assert main(
            [
                "simulate", str(swf_path),
                "--max-jobs", "50",
                "--profile",
                "--run-log", str(tmp_path / "runs.jsonl"),
            ]
        ) == 2
        assert "observe the sweep runner" in capsys.readouterr().err

    def test_report_renders_registry_aggregates(self, swf_path, tmp_path, capsys):
        log = tmp_path / "runs.jsonl"
        assert main(
            [
                "simulate", str(swf_path),
                "--max-jobs", "150",
                "--policy", "fcfs,sjf,f1",
                "--run-log", str(log),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(log)]) == 0
        out = capsys.readouterr().out
        assert "3 record(s), run registry" in out
        assert "sweep summary" in out
        assert "per-worker load" in out
        assert "trajectory" in out

    def test_report_bench_history_flags_regressions(self, tmp_path, capsys):
        log = tmp_path / "bench.jsonl"
        log.write_text(
            json.dumps({"bench": "b[x]", "wall_seconds": 1.0}) + "\n"
            + json.dumps({"bench": "b[x]", "wall_seconds": 2.0}) + "\n"
        )
        assert main(["report", str(log)]) == 0
        out = capsys.readouterr().out
        assert "bench history" in out
        assert "REGRESSED" in out
        assert "2.00x" in out
        assert main(["report", str(log), "--fail-on-regression"]) == 1
        # raising the threshold clears the flag
        capsys.readouterr()
        assert main(
            ["report", str(log), "--fail-on-regression",
             "--regression-factor", "2.5"]
        ) == 0
        assert "REGRESSED" not in capsys.readouterr().out

    def test_report_rejects_bad_inputs(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", str(empty)]) == 2
        assert "no records" in capsys.readouterr().err

        alien = tmp_path / "alien.jsonl"
        alien.write_text(json.dumps({"something": "else"}) + "\n")
        assert main(["report", str(alien)]) == 2
        assert "neither" in capsys.readouterr().err


def bench_history(tmp_path, tail):
    """A bench history with 5 stable runs then one run per `tail` value."""
    log = tmp_path / "bench.jsonl"
    rows = [{"bench": "b[x]", "wall_seconds": 1.0, "status": "ok"}] * 5
    rows += [
        {"bench": "b[x]", "wall_seconds": v, "status": "ok"} for v in tail
    ]
    log.write_text("".join(json.dumps(r) + "\n" for r in rows))
    return log


class TestCliPerfGate:
    def test_slowed_entry_fails_gate(self, tmp_path, capsys):
        log = bench_history(tmp_path, [3.0])
        assert main(
            ["report", str(log), "--perf", "--fail-on-regression"]
        ) == 1
        out = capsys.readouterr().out
        assert "perf gate" in out and "REGRESSED" in out

    def test_clean_history_passes_gate(self, tmp_path, capsys):
        log = bench_history(tmp_path, [1.02])
        assert main(
            ["report", str(log), "--perf", "--fail-on-regression"]
        ) == 0
        assert "REGRESSED" not in capsys.readouterr().out

    def test_gate_uses_median_not_predecessor(self, tmp_path, capsys):
        # one slow historical run would trip the run-over-run trajectory
        # but must not drag the median baseline
        log = bench_history(tmp_path, [4.0, 1.0])
        assert main(
            ["report", str(log), "--perf", "--fail-on-regression"]
        ) == 0

    def test_bad_gate_flags_exit_two(self, tmp_path, capsys):
        log = bench_history(tmp_path, [1.0])
        assert main(["report", str(log), "--perf", "--median-of", "0"]) == 2
        assert "--median-of" in capsys.readouterr().err
        assert main(
            ["report", str(log), "--perf", "--regression-factor", "1.0"]
        ) == 2
        assert "--regression-factor" in capsys.readouterr().err

    def test_json_format_emits_one_document(self, tmp_path, capsys):
        log = bench_history(tmp_path, [3.0])
        assert main(["report", str(log), "--perf", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "bench history"
        assert doc["regressed_keys"] == ["b[x]"]
        (entry,) = doc["perf_gate"]
        assert entry["regressed"] and entry["baseline"] == 1.0
        assert len(doc["trajectory"]) == doc["n_records"]

    def test_json_shorthand_flag(self, tmp_path, capsys):
        log = bench_history(tmp_path, [1.0])
        assert main(["report", str(log), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["kind"] == "bench history"

    def test_registry_json_includes_report(self, swf_path, tmp_path, capsys):
        log = tmp_path / "runs.jsonl"
        assert main(
            [
                "simulate", str(swf_path),
                "--max-jobs", "150",
                "--policy", "fcfs,sjf",
                "--run-log", str(log),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(log), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "run registry"
        assert doc["report"]["n_tasks"] == 2

    def test_conflicting_format_flags_exit_two(self, tmp_path, capsys):
        log = bench_history(tmp_path, [1.0])
        with pytest.raises(SystemExit) as exc_info:
            main(["report", str(log), "--format", "text", "--json"])
        assert exc_info.value.code == 2
        assert "conflicting output formats" in capsys.readouterr().err
        with pytest.raises(SystemExit) as exc_info:
            main(["report", str(log), "--format", "json", "--format", "text"])
        assert exc_info.value.code == 2
        # repeating the SAME format is not a conflict
        assert main(["report", str(log), "--json", "--format", "json"]) == 0


class TestCliProfile:
    def test_prints_breakdown_and_writes_outputs(self, swf_path, tmp_path, capsys):
        trace_out = tmp_path / "prof" / "trace.json"
        stacks_out = tmp_path / "prof" / "stacks.txt"
        assert main(
            [
                "profile", str(swf_path),
                "--policy", "sjf",
                "--max-jobs", "200",
                "--sample-hz", "200",
                "--trace-out", str(trace_out),
                "--stacks-out", str(stacks_out),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "hot-path wall-time breakdown" in out
        assert "simulate" in out and "sampler:" in out
        doc = json.loads(trace_out.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "simulate" in names
        assert "simulate" in stacks_out.read_text()

    def test_rejects_bad_flags(self, swf_path, tmp_path, capsys):
        assert main(["profile", str(swf_path), "--sample-hz", "-1"]) == 2
        assert "--sample-hz" in capsys.readouterr().err
        assert main(["profile", str(swf_path), "--policy", "nope"]) == 2
        assert "unknown policy" in capsys.readouterr().err
        clash = tmp_path / "file"
        clash.write_text("")
        assert main(
            ["profile", str(swf_path), "--trace-out", str(clash / "t.json")]
        ) == 2
        assert "invalid output" in capsys.readouterr().err


class TestCliFuzz:
    def test_clean_campaign_exits_zero(self, capsys):
        assert main(["fuzz", "--budget", "25", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "ok: engines match the oracle" in out
        assert "25 workload(s)" in out

    def test_policy_subset(self, capsys):
        assert main(
            ["fuzz", "--budget", "10", "--policy", "easy,conservative"]
        ) == 0
        assert "2 policy configuration(s)" in capsys.readouterr().out

    def test_divergence_exits_one_and_writes_reproducer(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.sched.cluster import Cluster

        real = Cluster.reservation

        def buggy(self, cores, now):
            shadow, extra = real(self, cores, now)
            return shadow, extra + 1

        monkeypatch.setattr(Cluster, "reservation", buggy)
        out = tmp_path / "repro.swf"
        assert main(
            ["fuzz", "--budget", "50", "--seed", "0",
             "--policy", "easy", "--out", str(out)]
        ) == 1
        text = capsys.readouterr().out
        assert "divergence in policy 'easy'" in text
        assert f"wrote shrunk reproducer to {out}" in text
        # the reproducer is a loadable SWF replayable through simulate
        monkeypatch.setattr(Cluster, "reservation", real)
        capsys.readouterr()
        assert main(["simulate", str(out)]) == 0

    def test_divergence_without_out_prints_swf(self, monkeypatch, capsys):
        from repro.sched.cluster import Cluster

        real = Cluster.reservation
        monkeypatch.setattr(
            Cluster,
            "reservation",
            lambda self, cores, now: (
                real(self, cores, now)[0],
                real(self, cores, now)[1] + 1,
            ),
        )
        assert main(
            ["fuzz", "--budget", "50", "--seed", "0", "--policy", "easy"]
        ) == 1
        out = capsys.readouterr().out
        assert "shrunk reproducer (SWF):" in out
        assert "; MaxProcs: 16" in out

    def test_unknown_policy_exits_two(self, capsys):
        assert main(["fuzz", "--policy", "bogus"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_bad_budget_exits_two(self, capsys):
        assert main(["fuzz", "--budget", "0"]) == 2
        assert "--budget" in capsys.readouterr().err

    def test_out_parent_is_file_exits_two(self, tmp_path, monkeypatch, capsys):
        from repro.sched.cluster import Cluster

        real = Cluster.reservation

        def buggy(self, cores, now):
            shadow, extra = real(self, cores, now)
            return shadow, extra + 1

        monkeypatch.setattr(Cluster, "reservation", buggy)
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        assert main(
            ["fuzz", "--budget", "50", "--policy", "easy",
             "--out", str(blocker / "repro.swf")]
        ) == 2
        assert "invalid reproducer output" in capsys.readouterr().err


class TestReport:
    @pytest.fixture(scope="class")
    def study(self):
        return CrossSystemStudy.from_traces(
            {
                "theta": generate_trace("theta", days=2, seed=1),
                "philly": generate_trace("philly", days=2, seed=1),
            }
        )

    def test_sections_present(self, study):
        text = build_report(study)
        for section in (
            "## Traces",
            "## Job geometries",
            "## Core-hour domination",
            "## Utilization",
            "## Waiting time",
            "## Failures",
            "## User behaviour",
            "## Takeaways",
        ):
            assert section in text

    def test_systems_listed(self, study):
        text = build_report(study)
        assert "theta" in text and "philly" in text

    def test_custom_title(self, study):
        assert build_report(study, title="My Study").startswith("# My Study")

    def test_write_report(self, study, tmp_path):
        path = write_report(study, tmp_path / "out.md")
        assert Path(path).read_text().startswith("#")

    def test_markdown_tables_well_formed(self, study):
        for line in build_report(study).splitlines():
            if line.startswith("|"):
                assert line.endswith("|")
