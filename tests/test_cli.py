"""Tests for the top-level CLI and the markdown report generator."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.core.report import build_report, write_report
from repro.core.study import CrossSystemStudy
from repro.traces.synth import generate_trace


@pytest.fixture(scope="module")
def swf_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("swf") / "theta.swf"
    assert main(["generate", "theta", "-o", str(path), "--days", "2", "--seed", "1"]) == 0
    return path


class TestCli:
    def test_generate_writes_swf(self, swf_path):
        assert swf_path.exists()
        assert swf_path.read_text().startswith("; Computer:")

    def test_validate_clean(self, swf_path, capsys):
        assert main(["validate", str(swf_path)]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_validate_broken(self, tmp_path, capsys):
        bad = tmp_path / "bad.swf"
        # 18-field line with negative runtime (field 4)
        bad.write_text("1 0 0 -5 4 -1 -1 4 100 -1 1 1 -1 -1 -1 -1 -1 -1\n")
        # runtime is clamped non-negative on parse; craft oversize instead
        bad.write_text(
            "; MaxProcs: 4\n"
            "1 0 0 5 400000000 -1 -1 400000000 100 -1 1 1 -1 -1 -1 -1 -1 -1\n"
        )
        assert main(["validate", str(bad)]) == 1
        assert "oversized" in capsys.readouterr().out

    def test_analyze_summary(self, swf_path, capsys):
        assert main(["analyze", str(swf_path)]) == 0
        out = capsys.readouterr().out
        assert "median runtime" in out

    def test_analyze_report(self, swf_path, tmp_path, capsys):
        report = tmp_path / "report.md"
        assert main(["analyze", str(swf_path), "--report", str(report)]) == 0
        text = report.read_text()
        assert text.startswith("# Analysis of")
        assert "## Takeaways" in text

    def test_simulate(self, swf_path, capsys):
        assert main(
            [
                "simulate",
                str(swf_path),
                "--backfill",
                "relaxed",
                "--relax",
                "0.2",
                "--max-jobs",
                "150",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "utilization" in out and "fcfs + relaxed" in out

    def test_study_prints_takeaways(self, capsys):
        assert main(["study", "--days", "1", "--seed", "3"]) == 0
        assert "Takeaway 1" in capsys.readouterr().out

    def test_study_report(self, tmp_path, capsys):
        report = tmp_path / "study.md"
        assert main(["study", "--days", "1", "--seed", "3", "--report", str(report)]) == 0
        assert report.exists()

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestReport:
    @pytest.fixture(scope="class")
    def study(self):
        return CrossSystemStudy.from_traces(
            {
                "theta": generate_trace("theta", days=2, seed=1),
                "philly": generate_trace("philly", days=2, seed=1),
            }
        )

    def test_sections_present(self, study):
        text = build_report(study)
        for section in (
            "## Traces",
            "## Job geometries",
            "## Core-hour domination",
            "## Utilization",
            "## Waiting time",
            "## Failures",
            "## User behaviour",
            "## Takeaways",
        ):
            assert section in text

    def test_systems_listed(self, study):
        text = build_report(study)
        assert "theta" in text and "philly" in text

    def test_custom_title(self, study):
        assert build_report(study, title="My Study").startswith("# My Study")

    def test_write_report(self, study, tmp_path):
        path = write_report(study, tmp_path / "out.md")
        assert Path(path).read_text().startswith("#")

    def test_markdown_tables_well_formed(self, study):
        for line in build_report(study).splitlines():
            if line.startswith("|"):
                assert line.endswith("|")
