"""Tests for the performance-tracing layer (the PR 7 tentpole).

The acceptance properties, in order of load-bearing-ness:

* a sweep run with a :class:`~repro.obs.PerfConfig` attached returns
  results **bit-identical** to an uninstrumented run (tracing observes,
  never decides) while producing one Chrome trace with a lane per worker;
* ``Profiler.span()`` is exception-safe end to end: a span interrupted by
  a fault (``testkit.chaos`` raising mid-cell) still closes, records the
  error, and serializes — the whole payload pipeline survives failures;
* the trace records the sweep's *dynamics*: cache hits, journal replays,
  watchdog retries and terminal failures all appear as instant events;
* the perf gate flags a synthetically slowed bench entry against its
  median-of-k baseline and passes untouched histories.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.obs import (
    ChromeTraceExporter,
    PerfConfig,
    Profiler,
    SamplingProfiler,
    SweepTrace,
    collapse_spans,
    collapse_stacks,
    format_collapsed,
    merge_metric_payloads,
    perf_gate,
)
from repro.runner import ResultCache, RetryPolicy, SimTask, run_sweep
from repro.sched import EASY, SimWorkload, simulate
from repro.testkit import ChaosConfig, ChaosError

CAPACITY = 16


def wl(n=20, seed=3):
    rng = np.random.default_rng(seed)
    submit = np.sort(rng.uniform(0, 1800.0, n))
    runtime = rng.uniform(60.0, 900.0, n)
    return SimWorkload(
        submit=submit,
        cores=rng.integers(1, 8, n).astype(np.int64),
        runtime=runtime,
        walltime=runtime * 1.5,
        user=np.zeros(n, dtype=np.int64),
    )


def grid(workload, policies=("fcfs", "sjf", "f1", "wfp3"), capacity=CAPACITY):
    return [
        SimTask(
            label=policy,
            workload=workload,
            policy=policy,
            backfill=EASY,
            capacity=capacity,
        )
        for policy in policies
    ]


class TestSpanTree:
    def test_parent_links_and_nesting(self):
        prof = Profiler()
        with prof.span("outer", k=1):
            with prof.span("inner"):
                pass
            with prof.span("inner"):
                pass
        payload = prof.to_payload()
        spans = payload["spans"]
        assert [s["name"] for s in spans] == ["inner", "inner", "outer"]
        outer = spans[-1]
        assert outer["parent"] is None
        assert outer["args"] == {"k": 1}
        assert all(s["parent"] == outer["id"] for s in spans[:2])
        assert all(s["t1"] >= s["t0"] >= 0.0 for s in spans)

    def test_self_time_shares_sum_to_one(self):
        prof = Profiler()
        with prof.span("root"):
            for _ in range(3):
                with prof.span("child"):
                    time.sleep(0.001)
        rows = prof.as_dict()["spans"]
        assert sum(r["share"] for r in rows.values()) == pytest.approx(1.0)
        root, child = rows["root"], rows["child"]
        # the root's self time excludes its children's elapsed time
        assert root["self_s"] <= root["total_s"] - child["total_s"] + 1e-9
        assert payload_roundtrips(prof)

    def test_exception_closes_span_and_records_error(self):
        prof = Profiler()
        with pytest.raises(ValueError):
            with prof.span("doomed"):
                raise ValueError("boom")
        (span,) = prof.to_payload()["spans"]
        assert span["error"] == "ValueError: boom"
        assert "partial" not in span
        # the stack unwound: a later span is a root, not a child of "doomed"
        with prof.span("after"):
            pass
        after = prof.to_payload()["spans"][-1]
        assert after["name"] == "after" and after["parent"] is None

    def test_abandoned_spans_closed_as_partial(self):
        prof = Profiler()
        outer = prof.span("outer")
        outer.__enter__()
        prof.span("inner").__enter__()  # never exited
        prof.close_open_spans()
        spans = prof.to_payload()["spans"]
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert all(s.get("partial") for s in spans)

    def test_max_spans_cap_counts_drops(self):
        prof = Profiler(max_spans=5)
        for _ in range(9):
            with prof.span("s"):
                pass
        payload = prof.to_payload()
        assert len(payload["spans"]) == 5
        assert payload["dropped_spans"] == 4
        # stats still see every call even when span records are dropped
        assert prof.stats("s")[0] == 9


def payload_roundtrips(prof: Profiler) -> bool:
    """A payload must be plain JSON all the way down."""
    payload = prof.to_payload()
    return json.loads(json.dumps(payload)) == payload


class TestChaosExceptionSafety:
    """Regression: a chaos fault mid-span must not corrupt the profiler."""

    def test_chaos_error_inside_span_tree(self):
        chaos = ChaosConfig(error_p=1.0, seed=0)
        prof = Profiler(worker="w1")
        with pytest.raises(ChaosError):
            with prof.span("cell", label="x"):
                with prof.span("simulate"):
                    chaos.before_execute("fp", 1)
        payload = prof.to_payload()
        by_name = {s["name"]: s for s in payload["spans"]}
        assert "ChaosError" in by_name["simulate"]["error"]
        assert "ChaosError" in by_name["cell"]["error"]
        assert by_name["simulate"]["parent"] == by_name["cell"]["id"]
        assert payload_roundtrips(prof)
        # repeated attempts on the same profiler never leak open spans
        for attempt in range(2, 5):
            with pytest.raises(ChaosError):
                with prof.span("cell", label="x"):
                    chaos.before_execute("fp", attempt)
        roots = [s for s in prof.to_payload()["spans"] if s["parent"] is None]
        assert len(roots) == 4  # one per attempt: the stack fully unwound


class TestChromeExport:
    def _payload(self):
        prof = Profiler(worker="w0")
        with prof.span("cell", label="fcfs"):
            with prof.span("simulate"):
                time.sleep(0.001)
        return prof.to_payload()

    def test_export_shape(self):
        exporter = ChromeTraceExporter()
        exporter.add_profile(self._payload())
        doc = exporter.to_dict()
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {m["args"]["name"] for m in meta if m["name"] == "process_name"} == {"w0"}
        assert {s["name"] for s in spans} == {"cell", "simulate"}
        # timestamps are rebased so the earliest event sits at t=0
        assert min(s["ts"] for s in spans) == 0
        assert all(s["dur"] >= 1 for s in spans)
        assert json.loads(json.dumps(doc)) == doc

    def test_instants_and_multiple_lanes(self):
        exporter = ChromeTraceExporter()
        exporter.add_profile(self._payload())
        exporter.add_instant("retry", time.time(), lane="sweep-parent",
                             args={"label": "sjf"})
        doc = exporter.to_dict()
        lanes = {m["args"]["name"] for m in doc["traceEvents"]
                 if m.get("name") == "process_name"}
        assert lanes == {"w0", "sweep-parent"}
        (instant,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "retry" and instant["args"]["label"] == "sjf"

    def test_collapse_spans_weights_are_self_time(self):
        payload = self._payload()
        stacks = collapse_spans(payload)
        assert set(stacks) == {"cell", "cell;simulate"}
        spans = {s["name"]: s for s in payload["spans"]}
        want = round(1e6 * (
            (spans["cell"]["t1"] - spans["cell"]["t0"])
            - (spans["simulate"]["t1"] - spans["simulate"]["t0"])
        ))
        assert stacks["cell"] == pytest.approx(want, abs=2)

    def test_format_collapsed_is_flamegraph_input(self):
        lines = format_collapsed({"a;b": 10, "a": 5}).splitlines()
        assert lines == ["a 5", "a;b 10"]


class TestSamplingProfiler:
    def test_samples_attribute_to_repro_frames(self):
        workload = wl(n=400, seed=1)
        sampler = SamplingProfiler(hz=500.0)
        sampler.start()
        try:
            deadline = time.time() + 5.0
            while time.time() < deadline:
                simulate(workload, CAPACITY, "fcfs", EASY)
                if sampler.to_payload()["n_samples"] > 0:
                    break
        finally:
            sampler.stop()
        payload = sampler.to_payload()
        assert payload["n_samples"] > 0
        assert payload["hz"] == 500.0
        assert all(key.startswith("repro") for key in payload["stacks"])
        # every stack is root-first: the leaf module is the last element
        assert sum(payload["stacks"].values()) + payload["n_unmatched"] == (
            payload["n_samples"]
        )

    def test_collapse_stacks_merges_spans_and_samples(self):
        prof = Profiler()
        with prof.span("cell"):
            time.sleep(0.001)
        sampler_payload = {
            "hz": 100.0, "prefix": "repro", "n_samples": 2,
            "n_unmatched": 0, "stacks": {"repro.sched.engine": 2},
        }
        merged = collapse_stacks([prof.to_payload()], [sampler_payload])
        assert "cell" in merged
        # 2 samples at 100 Hz weigh 2 * 10_000 us
        assert merged["repro.sched.engine"] == 20_000

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0.0)
        with pytest.raises(ValueError):
            PerfConfig(sampler_hz=-1.0)

    def test_stop_is_idempotent(self):
        sampler = SamplingProfiler(hz=100.0)
        sampler.start()
        sampler.stop()
        sampler.stop()
        assert not any(
            t.name == "repro-sampler" for t in threading.enumerate()
        )


class TestSweepAggregation:
    def test_instrumented_sweep_is_bit_identical(self, tmp_path):
        tasks = grid(wl())
        plain = run_sweep(tasks, jobs=2)
        perf = PerfConfig(trace_out=tmp_path / "t.json",
                          stacks_out=tmp_path / "s.txt")
        traced = run_sweep(tasks, jobs=2, perf=perf)
        assert [r.payload() for r in traced] == [r.payload() for r in plain]

    def test_trace_has_worker_lanes_and_engine_spans(self, tmp_path):
        out = tmp_path / "trace.json"
        perf = PerfConfig(trace_out=out)
        run_sweep(grid(wl()), jobs=2, perf=perf)
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        lanes = {e["args"]["name"] for e in events
                 if e.get("name") == "process_name"}
        assert "sweep-parent" in lanes
        assert len(lanes) >= 2  # at least one worker lane beside the parent
        names = {e["name"] for e in events if e["ph"] == "X"}
        # worker cells nest the engine's own spans; the parent contributes
        # its fingerprint/cache-probe/execute phases
        assert {"cell", "simulate", "execute", "fingerprint"} <= names
        assert any("simulate" in path for path in perf.trace.collapsed())

    def test_fine_spans_opt_in_records_engine_rounds(self):
        """Per-round engine spans appear only under ``fine_spans=True``.

        The coarse default keeps the sweep inside the <5% overhead budget
        (benchmarks/test_bench_obs_overhead.py); the fine mode trades that
        budget for exact per-round timing.
        """
        tasks = grid(wl(), policies=("fcfs",))
        coarse = PerfConfig()
        run_sweep(tasks, perf=coarse)
        fine = PerfConfig(fine_spans=True)
        run_sweep(tasks, perf=fine)

        round_spans = {"policy_sort", "backfill_scan", "event_drain"}

        def span_names(cfg):
            return {
                s["name"]
                for cell in cfg.trace.cells
                for s in cell["profile"]["spans"]
            }

        assert span_names(coarse) & round_spans == set()
        assert round_spans <= span_names(fine)
        # granularity only changes what is observed, never the schedule
        assert [r.payload() for r in run_sweep(tasks, perf=fine)] == [
            r.payload() for r in run_sweep(tasks)
        ]

    def test_cache_hits_become_instants(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = grid(wl(), policies=("fcfs", "sjf"))
        run_sweep(tasks, cache=cache)
        perf = PerfConfig()
        run_sweep(tasks, cache=cache, perf=perf)
        hits = [e for e in perf.trace.events if e["kind"] == "cache_hit"]
        assert {e["label"] for e in hits} == {"fcfs", "sjf"}

    def test_watchdog_retries_recorded(self):
        tasks = grid(wl(), policies=("fcfs", "sjf"))
        fps = [t.fingerprint() for t in tasks]
        # search a seed whose first attempt deterministically faults
        seed = next(
            s for s in range(2000)
            if any(
                ChaosConfig(error_p=0.4, seed=s).fault_for(fp, 1) == "error"
                for fp in fps
            )
        )
        chaos = ChaosConfig(error_p=0.4, seed=seed)
        perf = PerfConfig()
        baseline = run_sweep(tasks)
        healed = run_sweep(
            tasks,
            on_error="retry",
            retry=RetryPolicy(max_attempts=8, backoff_base=0.0),
            chaos=chaos,
            perf=perf,
        )
        # chaos decides whether an attempt fails, never what a success
        # computes — and the retries leave a visible trail in the trace
        assert [r.payload() for r in healed] == [
            r.payload() for r in baseline
        ]
        retries = [e for e in perf.trace.events if e["kind"] == "retry"]
        assert retries and all(e["args"]["attempt"] >= 1 for e in retries)
        names = {e["name"] for e in perf.trace.to_chrome()["traceEvents"]
                 if e["ph"] == "i"}
        assert "retry" in names

    def test_failed_cell_ships_partial_profile(self):
        # cores > capacity is a poison error: the engine raises before the
        # cell completes, and the worker must still ship its span tree
        poison = SimTask(
            label="poison",
            workload=wl(n=4),
            policy="fcfs",
            backfill=EASY,
            capacity=1,
        )
        perf = PerfConfig()
        results = run_sweep([poison], on_error="skip", perf=perf)
        assert results == [None]
        (cell,) = perf.trace.cells
        assert cell["failed"] and cell["label"] == "poison"
        spans = cell["profile"]["spans"]
        assert any("ValueError" in s.get("error", "") for s in spans)

    def test_one_config_accumulates_across_sweeps(self, tmp_path):
        out = tmp_path / "two_phase.json"
        perf = PerfConfig(trace_out=out)
        run_sweep(grid(wl(), policies=("fcfs",)), perf=perf)
        run_sweep(grid(wl(), policies=("sjf",)), perf=perf)
        assert perf.trace.n_cells == 2
        doc = json.loads(out.read_text())
        n_exec = sum(1 for e in doc["traceEvents"]
                     if e["ph"] == "X" and e["name"] == "execute")
        assert n_exec == 2  # one parent "execute" phase per sweep

    def test_sampler_and_metrics_ride_along(self):
        perf = PerfConfig(sampler_hz=500.0, collect_metrics=True)
        run_sweep(grid(wl(n=200), policies=("fcfs",)), perf=perf)
        (cell,) = perf.trace.cells
        assert "sampler" in cell
        assert cell["metrics"]["counters"]
        merged = perf.trace.merged_metrics()
        assert merged["n_merged"] == 1
        assert merged["counters"]["sim_jobs_started_total"] == 200


class TestPerfGate:
    @staticmethod
    def history(values, bench="b"):
        return [
            {"bench": bench, "wall_seconds": v, "status": "ok"}
            for v in values
        ]

    def test_flags_synthetic_slowdown(self):
        records = self.history([1.0, 1.02, 0.98, 1.01, 1.0, 3.0])
        (entry,) = perf_gate(records, "bench")
        assert entry["regressed"]
        assert entry["baseline"] == pytest.approx(1.0)
        assert entry["ratio"] == pytest.approx(3.0)

    def test_noise_below_threshold_passes(self):
        records = self.history([1.0, 1.1, 0.9, 1.05, 1.0, 1.2])
        (entry,) = perf_gate(records, "bench")
        assert not entry["regressed"]

    def test_median_resists_one_outlier_baseline(self):
        # one anomalously slow historical run must not mask a regression
        records = self.history([1.0, 1.0, 9.0, 1.0, 1.0, 2.0])
        (entry,) = perf_gate(records, "bench")
        assert entry["baseline"] == pytest.approx(1.0)
        assert entry["regressed"]

    def test_no_history_passes(self):
        (entry,) = perf_gate(self.history([1.0]), "bench")
        assert entry["ratio"] is None and not entry["regressed"]

    def test_window_limits_baseline(self):
        records = self.history([10.0, 10.0, 1.0, 1.0, 1.0, 1.0, 2.0])
        (entry,) = perf_gate(records, "bench", window=4)
        assert entry["baseline"] == pytest.approx(1.0)
        assert entry["n_baseline"] == 4

    def test_cached_and_failed_rows_skipped(self):
        records = self.history([1.0, 1.0, 1.0])
        records.append({"bench": "b", "wall_seconds": 0.01, "cached": True})
        records.append({"bench": "b", "wall_seconds": 9.0, "status": "error"})
        records.append({"bench": "b", "wall_seconds": 1.0, "status": "ok"})
        (entry,) = perf_gate(records, "bench")
        assert entry["runs"] == 4
        assert not entry["regressed"]

    def test_validation(self):
        with pytest.raises(ValueError):
            perf_gate([], "bench", window=0)
        with pytest.raises(ValueError):
            perf_gate([], "bench", regression_factor=1.0)


class TestMetricMerge:
    def test_counters_sum_and_histograms_merge(self):
        from repro.obs import Metrics

        payloads = []
        for k in (1, 2):
            m = Metrics()
            m.counter("jobs", "d").inc(k)
            m.gauge("depth", "d").set(float(k))
            h = m.histogram("wait", "d")
            h.observe(1.0)
            payloads.append(json.loads(m.to_json(indent=None)))
        merged = merge_metric_payloads(payloads)
        assert merged["n_merged"] == 2
        assert merged["counters"]["jobs"] == 3
        assert merged["gauges"]["depth"] == 2.0
        assert sum(merged["histograms"]["wait"]["counts"]) == 2
