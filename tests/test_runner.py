"""Parallel sweep runner tests: determinism, caching, fingerprints.

The load-bearing guarantees (ISSUE satellite + tentpole contract):

* ``run_sweep`` at any worker count returns results **bit-identical** to a
  serial run;
* a warm cache serves every cell from disk (``cached=True``) without
  running a single simulation;
* fingerprints identify a cell by its physics (workload, capacity, policy,
  backfill, faults, engine code), never by its label.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.runner import (
    ResultCache,
    SimTask,
    SweepSpec,
    TaskResult,
    WorkloadSpec,
    code_version,
    default_jobs,
    derive_seed,
    parallel_map,
    run_sweep,
    stable_hash,
    workload_fingerprint,
)
from repro.sched import EASY, NO_BACKFILL, FaultConfig, SimWorkload, relaxed


def wl(submit, cores, runtime, walltime=None):
    submit = np.asarray(submit, dtype=float)
    runtime = np.asarray(runtime, dtype=float)
    return SimWorkload(
        submit=submit,
        cores=np.asarray(cores, dtype=np.int64),
        runtime=runtime,
        walltime=np.asarray(walltime, dtype=float) if walltime is not None else runtime,
        user=np.zeros(len(submit), dtype=np.int64),
    )


def small_workload(n=40, seed=7):
    rng = np.random.default_rng(seed)
    submit = np.sort(rng.uniform(0, 3600.0, n))
    runtime = rng.uniform(60.0, 1800.0, n)
    return wl(submit, rng.integers(1, 8, n), runtime, runtime * 1.5)


def grid_tasks(workload, policies=("fcfs", "sjf", "f1"), capacity=16):
    return [
        SimTask(
            label=policy,
            workload=workload,
            policy=policy,
            backfill=EASY,
            capacity=capacity,
        )
        for policy in policies
    ]


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(3, "theta", 0) == derive_seed(3, "theta", 0)

    def test_sensitive_to_every_part(self):
        base = derive_seed(3, "theta", 0)
        assert derive_seed(4, "theta", 0) != base
        assert derive_seed(3, "mira", 0) != base
        assert derive_seed(3, "theta", 1) != base

    def test_non_negative_63_bit(self):
        for base in (0, 1, 2**31):
            s = derive_seed(base, "x")
            assert 0 <= s < 2**63


class TestFingerprints:
    def test_label_excluded(self):
        w = small_workload()
        a = SimTask(label="a", workload=w, capacity=16)
        b = SimTask(label="b", workload=w, capacity=16)
        assert a.fingerprint() == b.fingerprint()

    def test_policy_and_backfill_included(self):
        w = small_workload()
        base = SimTask(label="x", workload=w, capacity=16)
        assert (
            SimTask(label="x", workload=w, policy="sjf", capacity=16).fingerprint()
            != base.fingerprint()
        )
        assert (
            SimTask(
                label="x", workload=w, backfill=relaxed(0.2), capacity=16
            ).fingerprint()
            != base.fingerprint()
        )
        assert (
            SimTask(label="x", workload=w, capacity=32).fingerprint()
            != base.fingerprint()
        )

    def test_workload_data_included(self):
        a = SimTask(label="x", workload=small_workload(seed=1), capacity=16)
        b = SimTask(label="x", workload=small_workload(seed=2), capacity=16)
        assert a.fingerprint() != b.fingerprint()

    def test_spec_workload_canonical(self):
        spec = WorkloadSpec(system="theta", days=1.0, seed=3, max_jobs=100)
        task = SimTask(label="x", workload=spec)
        canon = task.canonical()
        assert canon["workload"]["kind"] == "synth"
        assert canon["workload"]["system"] == "theta"
        assert canon["code"] == code_version()
        # canonical form is JSON-serializable by construction
        json.dumps(canon)

    def test_inline_workload_requires_capacity(self):
        task = SimTask(label="x", workload=small_workload())
        with pytest.raises(ValueError, match="explicit capacity"):
            task.fingerprint()

    def test_stable_hash_key_order_invariant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_workload_fingerprint_detects_changes(self):
        w = small_workload()
        fp = workload_fingerprint(w)
        assert fp == workload_fingerprint(small_workload())
        bumped = dataclasses.replace(w, submit=w.submit + 1.0)
        assert workload_fingerprint(bumped) != fp


class TestRunSweep:
    def test_parallel_bit_identical_to_serial(self):
        w = small_workload()
        serial = run_sweep(grid_tasks(w), jobs=1)
        fanned = run_sweep(grid_tasks(w), jobs=2)
        assert [r.label for r in fanned] == [r.label for r in serial]
        for s, p in zip(serial, fanned):
            assert p.payload() == s.payload()
            assert p.fingerprint == s.fingerprint

    def test_metrics_roundtrip_dataclass(self):
        (r,) = run_sweep(grid_tasks(small_workload(), policies=("fcfs",)))
        m = r.schedule_metrics()
        assert m.as_dict() == r.metrics
        assert m.n_jobs == 40

    def test_fault_cells_report_resilience(self):
        w = small_workload()
        cfg = FaultConfig(
            node_mtbf=4 * 3600.0,
            node_mttr=1800.0,
            n_nodes=4,
            max_attempts=2,
            seed=derive_seed(0, "faults"),
        )
        (r,) = run_sweep(
            [SimTask(label="f", workload=w, faults=cfg, capacity=16)]
        )
        rm = r.resilience_metrics()
        assert rm is not None
        assert rm.as_dict() == r.resilience
        # fault runs at two worker counts agree too
        again = run_sweep(
            [SimTask(label="f", workload=w, faults=cfg, capacity=16)], jobs=2
        )
        assert again[0].payload() == r.payload()

    def test_track_queue_surfaces_max_queue(self):
        (r,) = run_sweep(
            [
                SimTask(
                    label="q",
                    workload=small_workload(),
                    backfill=NO_BACKFILL,
                    capacity=8,
                    track_queue=True,
                )
            ]
        )
        assert r.max_queue is not None and r.max_queue > 0

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(grid_tasks(small_workload()), jobs=0)

    def test_order_preserved_with_mixed_hits(self, tmp_path):
        w = small_workload()
        cache = ResultCache(tmp_path / "cache")
        # warm only the middle cell
        run_sweep(grid_tasks(w, policies=("sjf",)), cache=cache)
        results = run_sweep(grid_tasks(w), cache=cache)
        assert [r.label for r in results] == ["fcfs", "sjf", "f1"]
        assert [r.cached for r in results] == [False, True, False]

    def test_observed_sweep_bit_identical_to_unobserved_serial(self, tmp_path):
        """RunRegistry + ProgressReporter attached change nothing (tentpole)."""
        from repro.obs import JsonlProgress, RunRegistry

        import io

        w = small_workload()
        baseline = run_sweep(grid_tasks(w), jobs=1)
        for jobs in (1, 2):
            with RunRegistry(tmp_path / f"runs-{jobs}.jsonl") as reg:
                observed = run_sweep(
                    grid_tasks(w),
                    jobs=jobs,
                    registry=reg,
                    progress=JsonlProgress(io.StringIO()),
                )
            assert [r.label for r in observed] == [r.label for r in baseline]
            for o, b in zip(observed, baseline):
                assert o.payload() == b.payload()
                assert o.fingerprint == b.fingerprint

    def test_wall_and_worker_excluded_from_payload(self):
        (r,) = run_sweep(grid_tasks(small_workload(), policies=("fcfs",)))
        assert r.wall_seconds > 0
        assert r.worker == "MainProcess"
        assert "wall_seconds" not in r.payload()
        assert "worker" not in r.payload()


class TestResultCache:
    def test_warm_cache_serves_every_cell(self, tmp_path):
        w = small_workload()
        cache_dir = tmp_path / "cache"
        cold = run_sweep(grid_tasks(w), cache=cache_dir)
        assert not any(r.cached for r in cold)

        cache = ResultCache(cache_dir)
        warm = run_sweep(grid_tasks(w), cache=cache)
        assert all(r.cached for r in warm), "warm run must not simulate"
        assert cache.hits == 3 and cache.misses == 0
        for a, b in zip(cold, warm):
            assert a.payload() == b.payload()

    def test_cache_accepts_str_and_path(self, tmp_path):
        w = small_workload()
        run_sweep(grid_tasks(w, policies=("fcfs",)), cache=str(tmp_path / "c"))
        (r,) = run_sweep(grid_tasks(w, policies=("fcfs",)), cache=tmp_path / "c")
        assert r.cached

    def test_layout_two_hex_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = stable_hash({"x": 1})
        cache.put(fp, {"v": 1})
        assert (tmp_path / fp[:2] / f"{fp}.json").is_file()
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = stable_hash({"x": 2})
        cache.put(fp, {"v": 1})
        (tmp_path / fp[:2] / f"{fp}.json").write_text("{not json", encoding="utf-8")
        assert cache.get(fp) is None
        assert cache.misses == 1

    def test_corrupt_entry_quarantined_not_rehit(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = stable_hash({"x": 3})
        cache.put(fp, {"v": 1})
        entry = tmp_path / fp[:2] / f"{fp}.json"
        entry.write_text("{torn", encoding="utf-8")
        assert cache.get(fp) is None
        assert cache.corrupt == 1
        # the damaged bytes moved aside for inspection...
        quarantine = entry.with_name(entry.name + ".corrupt")
        assert quarantine.read_text(encoding="utf-8") == "{torn"
        assert not entry.exists()
        assert cache.quarantined == [quarantine]
        # ...and quarantined entries don't count as cached entries
        assert len(cache) == 0
        # a rewrite heals the slot
        cache.put(fp, {"v": 2})
        assert cache.get(fp) == {"v": 2}

    def test_non_object_entry_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = stable_hash({"x": 4})
        cache.put(fp, {"v": 1})
        (tmp_path / fp[:2] / f"{fp}.json").write_text("[1, 2]", encoding="utf-8")
        assert cache.get(fp) is None
        assert cache.corrupt == 1

    def test_fsync_mode_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path, fsync=True)
        fp = stable_hash({"x": 5})
        cache.put(fp, {"v": 42})
        assert cache.get(fp) == {"v": 42}

    def test_code_version_in_fingerprint_guards_staleness(self):
        # the fingerprint embeds code_version(); a different engine hash
        # must yield a different fingerprint for the same task
        task = SimTask(label="x", workload=small_workload(), capacity=16)
        import repro.runner.cache as cache_mod

        fp = task.fingerprint()
        old = cache_mod._CODE_VERSION
        try:
            cache_mod._CODE_VERSION = "0" * 64
            assert task.fingerprint() != fp
        finally:
            cache_mod._CODE_VERSION = old

    def test_from_payload_roundtrip(self):
        (r,) = run_sweep(grid_tasks(small_workload(), policies=("fcfs",)))
        clone = TaskResult.from_payload(r.label, r.fingerprint, r.payload(), True)
        assert clone.metrics == r.metrics
        assert clone.cached


def _square(x):
    return x * x


class TestParallelMap:
    def test_serial_equals_parallel(self):
        items = list(range(10))
        assert parallel_map(_square, items, jobs=1) == parallel_map(
            _square, items, jobs=3
        )

    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []


class TestSweepSpec:
    def test_add_and_run(self, tmp_path):
        spec = SweepSpec(jobs=1, cache_dir=tmp_path / "c")
        for t in grid_tasks(small_workload(), policies=("fcfs", "sjf")):
            spec.add(t)
        first = spec.run()
        assert [r.label for r in first] == ["fcfs", "sjf"]
        assert all(r.cached for r in spec.run())

    def test_result_cache_instance_passes_through(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = SweepSpec(
            tasks=grid_tasks(small_workload(), policies=("fcfs",)),
            cache_dir=cache,
        )
        spec.run()
        # the caller's instance is used directly, so its counters survive
        assert (cache.hits, cache.misses) == (0, 1)
        assert all(r.cached for r in spec.run())
        assert (cache.hits, cache.misses) == (1, 1)

    def test_run_forwards_telemetry(self, tmp_path):
        from repro.obs import RunRegistry

        spec = SweepSpec(tasks=grid_tasks(small_workload(), policies=("fcfs",)))
        with RunRegistry(tmp_path / "runs.jsonl") as reg:
            spec.run(registry=reg)
        assert reg.count == 1


def test_default_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert default_jobs() == 4
    monkeypatch.setenv("REPRO_JOBS", "garbage")
    assert default_jobs() == 1
