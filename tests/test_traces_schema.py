"""Tests for the Trace schema, system specs, and categorization."""

import numpy as np
import pytest

from repro.frame import Frame
from repro.traces import (
    ALL_SYSTEMS,
    BLUE_WATERS,
    HELIOS,
    MIRA,
    PHILLY,
    TARGET_SYSTEMS,
    THETA,
    JobStatus,
    Trace,
    get_system,
    length_class,
    minimal_runtime_mask,
    minimal_size_mask,
    size_class,
    size_class_edges,
)


def make_trace(system=MIRA, **cols):
    base = {
        "submit_time": [0.0, 10.0, 20.0],
        "runtime": [100.0, 200.0, 300.0],
        "cores": [512, 1024, 2048],
    }
    base.update(cols)
    return Trace(system=system, jobs=Frame(base))


class TestTrace:
    def test_defaults_filled(self):
        tr = make_trace()
        for col in ("job_id", "user_id", "wait_time", "req_walltime", "status", "vc"):
            assert col in tr.jobs

    def test_missing_required_raises(self):
        with pytest.raises(ValueError, match="required"):
            Trace(system=MIRA, jobs=Frame({"submit_time": [0.0]}))

    def test_num_jobs_and_span(self):
        tr = make_trace()
        assert tr.num_jobs == 3
        assert tr.span_seconds == 20.0

    def test_core_hours(self):
        tr = make_trace()
        assert tr.core_hours()[0] == pytest.approx(512 * 100 / 3600)

    def test_turnaround(self):
        tr = make_trace(wait_time=[5.0, 5.0, 5.0])
        assert list(tr.turnaround()) == [105.0, 205.0, 305.0]

    def test_arrival_intervals(self):
        tr = make_trace()
        assert list(tr.arrival_intervals()) == [10.0, 10.0]

    def test_filter_and_window(self):
        tr = make_trace()
        assert tr.filter(tr["cores"] > 512).num_jobs == 2
        assert tr.window(0, 15).num_jobs == 2

    def test_status_mask(self):
        tr = make_trace(status=[0, 1, 2])
        assert tr.status_mask(JobStatus.FAILED).sum() == 1

    def test_sorted_by_submit(self):
        tr = Trace(
            system=MIRA,
            jobs=Frame(
                {"submit_time": [5.0, 1.0], "runtime": [1.0, 2.0], "cores": [1, 2]}
            ),
        )
        assert list(tr.sorted_by_submit()["submit_time"]) == [1.0, 5.0]


class TestJobStatus:
    def test_labels(self):
        assert JobStatus.PASSED.label == "Passed"
        assert JobStatus.KILLED.label == "Killed"

    def test_codes_stable(self):
        assert int(JobStatus.PASSED) == 0
        assert int(JobStatus.FAILED) == 1
        assert int(JobStatus.KILLED) == 2


class TestSystems:
    def test_table1_has_nine_rows(self):
        assert len(ALL_SYSTEMS) == 9

    def test_five_targets_selected(self):
        assert len(TARGET_SYSTEMS) == 5
        assert all(s.selected for s in TARGET_SYSTEMS)

    def test_excluded_systems_have_reasons(self):
        excluded = [s for s in ALL_SYSTEMS if not s.selected]
        assert len(excluded) == 4
        assert all(s.exclusion_reason for s in excluded)

    def test_lookup_aliases(self):
        assert get_system("blue waters") is BLUE_WATERS
        assert get_system("bw") is BLUE_WATERS
        assert get_system("MIRA") is MIRA

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            get_system("frontier")

    def test_schedulable_units(self):
        assert MIRA.schedulable_units == 786_432
        assert PHILLY.schedulable_units == 2_490
        assert BLUE_WATERS.schedulable_units == 396_000 + 4_228

    def test_paper_scale_facts(self):
        # Table I claims used in the text
        assert HELIOS.gpus > 2 * PHILLY.gpus
        assert PHILLY.virtual_clusters == 14


class TestCategorize:
    def test_dl_size_classes(self):
        cores = np.array([1, 2, 8, 9, 2048])
        assert list(size_class(cores, PHILLY)) == [0, 1, 1, 2, 2]

    def test_hpc_size_classes(self):
        total = MIRA.schedulable_units
        cores = np.array([1, int(total * 0.09), int(total * 0.2), int(total * 0.5)])
        assert list(size_class(cores, MIRA)) == [0, 0, 1, 2]

    def test_size_edges_dl_vs_hpc(self):
        assert size_class_edges(HELIOS) == (1.0, 8.0)
        lo, hi = size_class_edges(THETA)
        assert lo == pytest.approx(0.10 * THETA.schedulable_units)
        assert hi == pytest.approx(0.30 * THETA.schedulable_units)

    def test_length_classes(self):
        rt = np.array([10.0, 3599.0, 3600.0, 86400.0, 86401.0])
        assert list(length_class(rt)) == [0, 0, 1, 1, 2]

    def test_minimal_masks(self):
        assert list(minimal_size_mask(np.array([1, 2]))) == [True, False]
        assert list(minimal_runtime_mask(np.array([59.0, 60.0]))) == [True, False]
