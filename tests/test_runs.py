"""Run registry, sweep report, progress reporters, trajectory (repro.obs.runs).

The load-bearing guarantees (ISSUE 4 tentpole contract):

* a :class:`RunRegistry` attached to ``run_sweep`` logs one record per
  cell — atomic JSONL appends, cache hits first, computed cells in
  completion order — without changing the sweep's results;
* :class:`SweepReport` aggregates per-worker load, stragglers and cache
  efficiency from a record stream;
* :func:`trajectory` flags entries >= the regression factor of their
  predecessor and skips cache hits.
"""

import io
import json
import math

import numpy as np
import pytest

from repro.obs import (
    NULL_PROGRESS,
    JsonlProgress,
    NullProgress,
    ProgressReporter,
    RunRecord,
    RunRegistry,
    SweepReport,
    TtyProgress,
    read_records,
    trajectory,
)
from repro.runner import ResultCache, SimTask, SweepStats, run_sweep
from repro.sched import EASY, SimWorkload


def small_workload(n=40, seed=7):
    rng = np.random.default_rng(seed)
    submit = np.sort(rng.uniform(0, 3600.0, n))
    runtime = rng.uniform(60.0, 1800.0, n)
    return SimWorkload(
        submit=submit,
        cores=rng.integers(1, 8, n).astype(np.int64),
        runtime=runtime,
        walltime=runtime * 1.5,
        user=np.zeros(n, dtype=np.int64),
    )


def grid_tasks(workload, policies=("fcfs", "sjf", "f1"), capacity=16):
    return [
        SimTask(
            label=policy,
            workload=workload,
            policy=policy,
            backfill=EASY,
            capacity=capacity,
        )
        for policy in policies
    ]


def record(
    label="cell",
    wall=1.0,
    cached=False,
    worker="main",
    seq=0,
    policy="fcfs",
    ts=0.0,
):
    return {
        "fingerprint": f"f-{label}-{seq}",
        "label": label,
        "policy": policy,
        "system": None,
        "wall_seconds": wall,
        "cached": cached,
        "worker": worker,
        "seq": seq,
        "code": "c0",
        "metrics": {},
        "ts": ts,
    }


class TestRunRegistry:
    def test_append_and_read_back(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with RunRegistry(path) as reg:
            reg.append(RunRecord(**record(seq=0)))
            reg.append(record(seq=1))
            assert reg.count == 2
        rows = read_records(path)
        assert [r["seq"] for r in rows] == [0, 1]
        assert all(r["label"] == "cell" for r in rows)

    def test_appends_accumulate_across_instances(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        for seq in range(3):
            with RunRegistry(path) as reg:
                reg.append(record(seq=seq))
        assert [r["seq"] for r in read_records(path)] == [0, 1, 2]

    def test_creates_parent_directory(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "runs.jsonl"
        with RunRegistry(path) as reg:
            reg.append(record())
        assert path.exists()

    def test_closed_registry_rejects_appends(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs.jsonl")
        reg.close()
        reg.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            reg.append(record())

    def test_every_line_is_complete_json(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with RunRegistry(path) as reg:
            for seq in range(10):
                reg.append(record(seq=seq))
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            read_records(path)

    def test_run_record_round_trip(self):
        rec = RunRecord(**record(wall=2.5, worker="w1", seq=4))
        assert RunRecord.from_dict(rec.to_dict()) == rec

    def test_run_record_status_round_trip(self):
        rec = RunRecord(**record(seq=1), status="failed:timeout", attempt=3)
        clone = RunRecord.from_dict(rec.to_dict())
        assert clone.status == "failed:timeout"
        assert clone.attempt == 3

    def test_old_records_default_status_ok(self):
        # registries written before the crash-safe runner lack the
        # status/attempt keys; from_dict must fall back to the defaults
        rec = RunRecord.from_dict(record(seq=2))
        assert rec.status == "ok"
        assert rec.attempt == 1

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with RunRegistry(path) as reg:
            reg.append(record(seq=0))
            reg.append(record(seq=1))
        # crash mid-append: a partial, newline-less line at the tail
        with open(path, "ab") as fh:
            fh.write(b'{"fingerprint": "f-torn')
        with pytest.warns(RuntimeWarning, match="torn"):
            reg = RunRegistry(path)
        with reg:
            reg.append(record(seq=2))
        rows = read_records(path)
        assert [r["seq"] for r in rows] == [0, 1, 2]
        for line in path.read_text().splitlines():
            json.loads(line)  # the file is strictly parseable again

    def test_reader_skips_torn_tail_with_warning(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with RunRegistry(path) as reg:
            reg.append(record(seq=0))
        with open(path, "ab") as fh:
            fh.write(b'{"fingerprint": "f-torn')
        with pytest.warns(RuntimeWarning, match="truncated final line"):
            rows = read_records(path)
        assert [r["seq"] for r in rows] == [0]


class TestSweepReport:
    def test_failed_and_retried_rows_split_out(self):
        rows = [
            record(seq=0, wall=1.0),
            {**record(seq=1, wall=30.0), "status": "retried:timeout", "attempt": 1},
            {**record(seq=2, wall=1.2), "status": "ok", "attempt": 2},
            {**record(seq=3, wall=0.0), "status": "failed:crash", "attempt": 3},
        ]
        report = SweepReport(rows)
        assert report.n_tasks == 3  # 2 ok cells + 1 failed cell, not attempts
        assert len(report.failed) == 1
        assert len(report.retried) == 1
        # the retried attempt's 30 s timeout never pollutes wall stats
        assert report.total_wall == pytest.approx(2.2)
        d = report.to_dict()
        assert d["n_failed"] == 1 and d["n_retried"] == 1
        text = report.render()
        assert "failed" in text and "retried" in text

    def test_cache_efficiency_and_counts(self):
        recs = [record(cached=True, worker="cache"), record(wall=1.0), record(wall=3.0)]
        rep = SweepReport(recs)
        assert rep.n_tasks == 3
        assert rep.n_cached == 1
        assert rep.cache_hit_rate == pytest.approx(1 / 3)
        # cached cells never pollute the wall statistics
        assert rep.median_wall == pytest.approx(2.0)
        assert rep.total_wall == pytest.approx(4.0)

    def test_per_worker_load_and_balance(self):
        recs = [
            record(wall=1.0, worker="w1"),
            record(wall=1.0, worker="w1"),
            record(wall=2.0, worker="w2"),
        ]
        rep = SweepReport(recs)
        workers = rep.per_worker()
        assert workers["w1"] == {"tasks": 2, "wall_seconds": 2.0}
        assert workers["w2"] == {"tasks": 1, "wall_seconds": 2.0}
        assert rep.balance == pytest.approx(1.0)  # 2.0 / mean(2.0, 2.0)

    def test_straggler_detection(self):
        recs = [record(wall=1.0) for _ in range(5)] + [
            record(label="slow", wall=10.0)
        ]
        stragglers = SweepReport(recs, straggler_factor=3.0).stragglers()
        assert [s["label"] for s in stragglers] == ["slow"]
        assert stragglers[0]["ratio_to_median"] == pytest.approx(10.0)

    def test_no_stragglers_below_factor(self):
        recs = [record(wall=1.0), record(wall=2.5)]
        assert SweepReport(recs, straggler_factor=3.0).stragglers() == []

    def test_straggler_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            SweepReport([], straggler_factor=1.0)

    def test_empty_report_is_nan_safe(self):
        rep = SweepReport([])
        assert math.isnan(rep.cache_hit_rate)
        assert math.isnan(rep.balance)
        snap = rep.to_dict()
        assert snap["cache_hit_rate"] is None
        json.dumps(snap, allow_nan=False)  # fully JSON-clean
        assert "sweep summary" in rep.render()

    def test_throughput_from_timestamps(self):
        recs = [record(wall=1.0, ts=100.0), record(wall=1.0, ts=103.0)]
        # span 3s widened by the first record's own wall second
        assert SweepReport(recs).throughput == pytest.approx(2 / 4)

    def test_render_lists_workers_and_stragglers(self):
        recs = [record(wall=1.0, worker="w1") for _ in range(4)] + [
            record(label="slow", wall=9.0, worker="w2")
        ]
        text = SweepReport(recs).render()
        assert "per-worker load" in text
        assert "w2" in text
        assert "slow" in text

    def test_to_json_round_trips(self):
        snap = json.loads(SweepReport([record()]).to_json())
        assert snap["n_tasks"] == 1


class TestProgressReporters:
    def test_null_progress_is_disabled(self):
        assert NullProgress.enabled is False
        assert NULL_PROGRESS.enabled is False
        assert ProgressReporter.enabled is True

    def test_tty_progress_single_line(self):
        stream = io.StringIO()
        progress = TtyProgress(stream=stream)
        progress.sweep_start(2, 0, 1)
        rec = RunRecord(**record(wall=0.5, seq=0))
        progress.task_done(rec, 1, 2)
        progress.task_done(rec, 2, 2)
        progress.sweep_end({})
        text = stream.getvalue()
        assert "2 task(s)" in text
        assert "\r" in text  # self-overwriting updates
        assert text.endswith("\n")

    def test_jsonl_progress_event_stream(self):
        stream = io.StringIO()
        progress = JsonlProgress(stream)
        progress.sweep_start(1, 0, 2)
        progress.task_done(RunRecord(**record(seq=0)), 1, 1)
        progress.sweep_end({"n_tasks": 1})
        progress.close()
        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [e["event"] for e in events] == [
            "sweep_start",
            "task_done",
            "sweep_end",
        ]
        assert events[1]["label"] == "cell"
        assert events[2]["n_tasks"] == 1

    def test_jsonl_progress_owns_path(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        with JsonlProgress(path) as progress:
            progress.sweep_start(0, 0, 1)
        assert progress.count == 1
        assert json.loads(path.read_text())["event"] == "sweep_start"

    def test_jsonl_progress_close_flushes_not_closes_foreign_stream(self):
        stream = io.StringIO()
        progress = JsonlProgress(stream)
        progress.sweep_start(0, 0, 1)
        progress.close()
        progress.close()  # idempotent
        assert not stream.closed


class TestTrajectory:
    def test_flags_regressions_per_key(self):
        recs = [
            record(label="a", wall=1.0),
            record(label="b", wall=5.0),
            record(label="a", wall=1.4),  # 1.4x -> regressed at 1.3
            record(label="b", wall=5.1),  # 1.02x -> fine
        ]
        entries = trajectory(recs, "label")
        flagged = {(e["key"], e["regressed"]) for e in entries if e["index"] == 1}
        assert flagged == {("a", True), ("b", False)}

    def test_first_run_of_a_key_never_regresses(self):
        entries = trajectory([record(label="a", wall=100.0)], "label")
        assert entries[0]["ratio"] is None
        assert entries[0]["regressed"] is False

    def test_skips_cached_records(self):
        recs = [
            record(label="a", wall=1.0),
            record(label="a", wall=0.0, cached=True),
            record(label="a", wall=1.1),
        ]
        entries = trajectory(recs, "label")
        assert [e["value"] for e in entries] == [1.0, 1.1]

    def test_custom_factor_and_validation(self):
        recs = [record(label="a", wall=1.0), record(label="a", wall=1.2)]
        assert trajectory(recs, "label", regression_factor=1.15)[1]["regressed"]
        with pytest.raises(ValueError):
            trajectory(recs, "label", regression_factor=1.0)

    def test_bench_history_shape(self):
        recs = [
            {"bench": "test_fig1", "wall_seconds": 2.0},
            {"bench": "test_fig1", "wall_seconds": 2.9},
        ]
        entries = trajectory(recs, "bench")
        assert entries[1]["regressed"] is True


class TestSweepIntegration:
    def test_registry_logs_every_cell(self, tmp_path):
        tasks = grid_tasks(small_workload())
        with RunRegistry(tmp_path / "runs.jsonl") as reg:
            results = run_sweep(tasks, registry=reg)
        recs = reg.records()
        assert len(recs) == len(tasks)
        assert [r["label"] for r in recs] == [t.label for t in tasks]
        assert [r["seq"] for r in recs] == list(range(len(tasks)))
        assert all(r["wall_seconds"] > 0 for r in recs)
        assert all(not r["cached"] for r in recs)
        assert all(r["worker"] == "MainProcess" for r in recs)
        # metrics travel with the record (minable without the cache)
        assert recs[0]["metrics"] == results[0].metrics

    def test_cache_hits_logged_first_with_cache_worker(self, tmp_path):
        tasks = grid_tasks(small_workload())
        cache = ResultCache(tmp_path / "cache")
        run_sweep(tasks[:2], cache=cache)  # warm two of three cells
        with RunRegistry(tmp_path / "runs.jsonl") as reg:
            run_sweep(tasks, cache=cache, registry=reg)
        recs = reg.records()
        assert [r["cached"] for r in recs] == [True, True, False]
        assert [r["worker"] for r in recs][:2] == ["cache", "cache"]
        assert [r["wall_seconds"] for r in recs][:2] == [0.0, 0.0]

    def test_parallel_workers_recorded(self, tmp_path):
        tasks = grid_tasks(small_workload())
        with RunRegistry(tmp_path / "runs.jsonl") as reg:
            run_sweep(tasks, jobs=2, registry=reg)
        workers = {r["worker"] for r in reg.records()}
        assert all(w not in ("", "MainProcess", "cache") for w in workers)

    def test_progress_sees_completion_order(self):
        tasks = grid_tasks(small_workload())

        class Capture(ProgressReporter):
            def __init__(self):
                self.calls = []

            def sweep_start(self, total, cached, jobs):
                self.calls.append(("start", total, cached, jobs))

            def task_done(self, record, done, total):
                self.calls.append(("done", record.label, done, total))

            def sweep_end(self, stats):
                self.calls.append(("end", stats["n_tasks"]))

        capture = Capture()
        run_sweep(tasks, progress=capture)
        n = len(tasks)
        assert capture.calls[0] == ("start", n, 0, 1)
        assert capture.calls[-1] == ("end", n)
        dones = [c for c in capture.calls if c[0] == "done"]
        assert [c[2] for c in dones] == list(range(1, n + 1))

    def test_stats_out_filled(self, tmp_path):
        tasks = grid_tasks(small_workload())
        cache = ResultCache(tmp_path / "cache")
        stats = SweepStats()
        run_sweep(tasks, cache=cache, stats_out=stats)
        assert stats.n_tasks == len(tasks)
        assert stats.n_executed == len(tasks)
        assert stats.cache_misses == len(tasks)
        assert stats.cache_hits == 0
        assert stats.task_seconds > 0
        assert stats.total_seconds >= stats.execute_seconds

        warm = SweepStats()
        run_sweep(tasks, cache=cache, stats_out=warm)
        assert warm.cache_hits == len(tasks)
        assert warm.cache_misses == 0
        assert warm.n_executed == 0
        assert "cached" in warm.summary()
        assert warm.as_dict()["n_tasks"] == len(tasks)
