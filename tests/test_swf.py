"""SWF reader/writer round-trip and parsing tests."""

import numpy as np
import pytest

from repro.frame import Frame
from repro.traces import MIRA, JobStatus, Trace, read_swf, write_swf
from repro.traces.swf import format_swf_lines, parse_swf_lines
from repro.traces.synth import generate_trace


def make_trace():
    return Trace(
        system=MIRA,
        jobs=Frame(
            {
                "job_id": [1, 2, 3],
                "user_id": [7, 7, 9],
                "submit_time": [0.0, 60.0, 120.0],
                "wait_time": [5.0, 0.0, 100.0],
                "runtime": [1000.0, 2000.0, 50.0],
                "cores": [512, 1024, 512],
                "req_walltime": [3600.0, 7200.0, np.nan],
                "status": [0, 2, 1],
                "vc": [0, 0, 0],
            }
        ),
    )


def test_roundtrip_file(tmp_path):
    tr = make_trace()
    path = tmp_path / "trace.swf"
    write_swf(tr, path)
    back = read_swf(path, system=MIRA)
    for col in ("user_id", "cores", "status", "vc"):
        assert np.array_equal(back[col], tr[col]), col
    assert np.allclose(back["submit_time"], tr["submit_time"])
    assert np.allclose(back["runtime"], tr["runtime"])
    assert np.allclose(back["wait_time"], tr["wait_time"])


def test_missing_walltime_roundtrips_as_nan(tmp_path):
    tr = make_trace()
    path = tmp_path / "t.swf"
    write_swf(tr, path)
    back = read_swf(path, system=MIRA)
    assert np.isnan(back["req_walltime"][2])
    assert back["req_walltime"][0] == 3600.0


def test_status_mapping():
    lines = format_swf_lines(make_trace())
    frame, _ = parse_swf_lines(lines)
    assert list(frame["status"]) == [
        int(JobStatus.PASSED),
        int(JobStatus.KILLED),
        int(JobStatus.FAILED),
    ]


def test_header_metadata_parsed():
    lines = ["; Computer: TestBox", "; MaxProcs: 128", "", "; free comment"]
    _, meta = parse_swf_lines(lines)
    assert meta["Computer"] == "TestBox"
    assert meta["MaxProcs"] == "128"


def test_malformed_line_raises_with_lineno():
    with pytest.raises(ValueError, match="line 1"):
        parse_swf_lines(["1 2 3"])


def test_non_numeric_raises():
    with pytest.raises(ValueError, match="line 1"):
        parse_swf_lines(["a " * 18])


def test_empty_swf():
    frame, meta = parse_swf_lines([])
    assert frame.num_rows == 0


def test_read_without_system_synthesizes_spec(tmp_path):
    tr = make_trace()
    path = tmp_path / "t.swf"
    write_swf(tr, path)
    back = read_swf(path)
    assert back.system.name == MIRA.name
    assert back.system.cores == MIRA.schedulable_units


def test_user_zero_roundtrips_distinct_from_missing(tmp_path):
    # regression: -1 (missing) used to be remapped to 0 on parse, and user 0
    # used to be written as -1 — collapsing a real id onto the sentinel
    tr = Trace(
        system=MIRA,
        jobs=Frame(
            {
                "job_id": [1, 2],
                "user_id": [0, -1],
                "submit_time": [0.0, 10.0],
                "wait_time": [1.0, 1.0],
                "runtime": [100.0, 100.0],
                "cores": [16, 16],
                "req_walltime": [3600.0, 3600.0],
                "status": [0, 0],
                "vc": [0, -1],
            }
        ),
    )
    path = tmp_path / "zero.swf"
    write_swf(tr, path)
    back = read_swf(path, system=MIRA)
    assert list(back["user_id"]) == [0, -1]
    assert list(back["vc"]) == [0, -1]


def test_missing_user_keeps_documented_sentinel():
    from repro.traces.swf import MISSING_ID

    line = "1 0 5 100 16 -1 -1 16 3600 -1 1 -1 -1 -1 -1 -1 -1 -1"
    frame, _ = parse_swf_lines([line])
    assert frame["user_id"][0] == MISSING_ID
    assert frame["vc"][0] == MISSING_ID
    # a legitimate user/partition id 0 parses as 0, not as the sentinel
    line0 = "2 0 5 100 16 -1 -1 16 3600 -1 1 0 -1 -1 -1 0 -1 -1"
    frame0, _ = parse_swf_lines([line0])
    assert frame0["user_id"][0] == 0
    assert frame0["vc"][0] == 0


def test_synthetic_trace_swf_roundtrip(tmp_path):
    tr = generate_trace("theta", days=1.0, seed=0)
    path = tmp_path / "theta.swf"
    write_swf(tr, path)
    back = read_swf(path, system=tr.system)
    assert back.num_jobs == tr.num_jobs
    # times serialize as whole seconds
    assert np.allclose(back["submit_time"], np.floor(tr["submit_time"]), atol=1)
    assert np.array_equal(back["cores"], tr["cores"])
