"""Tests for the Lublin-Feitelson workload model."""

import numpy as np
import pytest

from repro.traces import validate_trace
from repro.traces.synth import LublinParameters, generate_lublin_trace
from repro.traces.synth.lublin import (
    _sample_arrivals,
    _sample_runtimes,
    _sample_sizes,
)

RNG = lambda s=0: np.random.default_rng(s)


@pytest.fixture(scope="module")
def trace():
    return generate_lublin_trace(days=10, seed=1)


def test_trace_validates(trace):
    assert validate_trace(trace).consistent


def test_deterministic(trace):
    again = generate_lublin_trace(days=10, seed=1)
    assert again.jobs == trace.jobs


def test_serial_fraction_matches_parameter(trace):
    p = LublinParameters()
    serial = float((trace["cores"] == 1).mean())
    assert serial == pytest.approx(p.p_serial, abs=0.05)


def test_power_of_two_preference(trace):
    cores = trace["cores"]
    parallel = cores[cores > 1]
    is_pow2 = (parallel & (parallel - 1)) == 0
    assert is_pow2.mean() > 0.6  # p_pow2 = 0.75 of parallel jobs


def test_sizes_within_capacity(trace):
    assert trace["cores"].max() <= trace.system.schedulable_units


def test_runtime_positive_and_heavy_tailed(trace):
    rt = trace["runtime"]
    assert rt.min() >= 1.0
    assert rt.mean() > np.median(rt)  # right-skew


def test_larger_jobs_run_longer_on_average():
    # the hyper-gamma mixing makes big jobs favour the long component
    p = LublinParameters()
    rng = RNG(3)
    small = _sample_runtimes(rng, np.full(20000, 2), p)
    large = _sample_runtimes(rng, np.full(20000, 2048), p)
    assert large.mean() > small.mean()


def test_daily_cycle_shape():
    p = LublinParameters(jobs_per_hour=50.0)
    t = _sample_arrivals(RNG(2), days=20, p=p)
    hours = ((t % 86400) // 3600).astype(int)
    counts = np.bincount(hours, minlength=24)
    # afternoon peak vs pre-dawn trough, as published
    assert counts[14] > 3 * counts[4]


def test_walltime_covers_runtime(trace):
    assert np.all(trace["req_walltime"] >= trace["runtime"])


def test_custom_system_clips_sizes():
    from repro.traces import THETA

    tr = generate_lublin_trace(days=2, seed=0, system=THETA)
    assert tr.system is THETA
    assert tr["cores"].max() <= THETA.schedulable_units


def test_parameter_validation():
    with pytest.raises(ValueError):
        LublinParameters(p_serial=1.5)
    with pytest.raises(ValueError):
        LublinParameters(hourly_weights=(1.0,) * 23)
    with pytest.raises(ValueError):
        LublinParameters(size_log2_lo=5.0, size_log2_hi=2.0)


def test_no_arrivals_raises():
    with pytest.raises(ValueError):
        generate_lublin_trace(
            days=0.001,
            seed=0,
            parameters=LublinParameters(jobs_per_hour=0.0001),
        )


def test_pipeline_compatibility(trace):
    """A Lublin trace flows through the paper analyses unchanged."""
    from repro.core import core_hour_shares, repetition_summary, runtime_summary

    assert runtime_summary(trace).median > 0
    shares = core_hour_shares(trace)
    assert shares.by_size.sum() == pytest.approx(1.0)
    rep = repetition_summary(trace, min_jobs=10)
    assert 0 < rep.top(10) <= 1.0
