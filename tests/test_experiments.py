"""Integration tests: every experiment runs end-to-end and reproduces the
paper's qualitative shapes at a reduced scale."""

import numpy as np
import pytest

from repro.experiments import REGISTRY, run_experiment
from repro.experiments.__main__ import main as cli_main

DAYS = 5.0
SEED = 0

CHEAP = [
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
]


@pytest.fixture(scope="module")
def results():
    return {
        exp: run_experiment(exp, days=DAYS, seed=SEED) for exp in CHEAP
    }


def test_registry_complete():
    # one entry per paper artifact (2 tables + 12 figures) + extensions
    paper = {f"fig{i}" for i in range(1, 13)} | {"table1", "table2"}
    assert paper <= set(REGISTRY)
    extensions = {k for k in REGISTRY if k.startswith("ext_")}
    assert len(extensions) >= 3


def test_all_cheap_experiments_render(results):
    for exp, result in results.items():
        text = result.render()
        assert result.exp_id == exp
        assert len(text) > 100, exp


class TestShapes:
    """The paper's headline qualitative claims at test scale."""

    def test_table1_selection(self, results):
        data = results["table1"].data
        assert set(data["selected"]) == {
            "Mira",
            "Theta",
            "Blue Waters",
            "Philly",
            "Helios",
        }
        assert "Supercloud" in data["excluded"]

    def test_fig1_dl_runtimes_shorter(self, results):
        d = results["fig1"].data
        assert d["helios"]["median_runtime"] < d["philly"]["median_runtime"]
        assert d["philly"]["median_runtime"] < d["mira"]["median_runtime"]

    def test_fig1_arrival_intervals(self, results):
        d = results["fig1"].data
        # HPC intervals ~10x DL intervals (paper: 100s vs 5-10s)
        assert d["mira"]["median_interval"] > 5 * d["philly"]["median_interval"]
        assert d["blue_waters"]["median_interval"] < 30

    def test_fig1_dl_single_gpu_dominates(self, results):
        d = results["fig1"].data
        assert d["philly"]["single_unit_fraction"] > 0.6
        assert d["helios"]["single_unit_fraction"] > 0.6
        assert d["mira"]["single_unit_fraction"] < 0.05

    def test_fig2_blue_waters_small_dominates(self, results):
        d = results["fig2"].data
        assert d["blue_waters"]["by_size"][0] > 0.85

    def test_fig2_dl_long_heavy(self, results):
        d = results["fig2"].data
        # DL long-job core-hour share far above HPC's
        assert d["philly"]["by_length"][2] > 5 * d["mira"]["by_length"][2]

    def test_fig3_philly_lowest_util(self, results):
        d = results["fig3"].data
        assert d["philly/gpu"]["average"] < d["mira/cpu"]["average"]

    def test_fig4_wait_ordering(self, results):
        d = results["fig4"].data
        assert d["helios"]["median_wait"] < 20  # 80% under 10s in the paper
        assert d["blue_waters"]["median_wait"] > d["philly"]["median_wait"]

    def test_fig5_long_jobs_wait_longest(self, results):
        d = results["fig5"].data
        for system, cells in d.items():
            # skip classes too thin to have a stable mean at test scale
            pairs = [
                (v, c)
                for v, c in zip(cells["by_length"], cells["length_counts"])
                if np.isfinite(v) and c >= 20
            ]
            values = [v for v, _ in pairs]
            assert values[-1] == max(values), system

    def test_fig6_passed_below_70(self, results):
        d = results["fig6"].data
        for system, cells in d.items():
            assert cells["count_shares"][0] < 0.80, system

    def test_fig6_killed_amplified(self, results):
        d = results["fig6"].data
        for system, cells in d.items():
            killed_count = cells["count_shares"][2]
            killed_hours = cells["core_hour_shares"][2]
            assert killed_hours > killed_count, system

    def test_fig7_pass_falls_with_length(self, results):
        d = results["fig7"].data
        for system, cells in d.items():
            series = [v for v in cells["pass_by_length"] if v is not None]
            assert series[-1] < series[0], system

    def test_fig8_repetition_levels(self, results):
        d = results["fig8"].data
        assert d["mira"]["curve"][2] > 0.75      # HPC top-3 > ~80%
        assert d["philly"]["curve"][2] < 0.65    # DL top-3 < ~60%

    def test_fig9_minimal_grows_with_queue(self, results):
        d = results["fig9"].data
        grown = 0
        for system, cells in d.items():
            mf = [v for v in cells["minimal_fraction"] if np.isfinite(v)]
            if len(mf) >= 2 and mf[-1] >= mf[0]:
                grown += 1
        assert grown >= 3  # the trend holds across most systems (paper wording)

    def test_fig10_dl_runtime_shrinks(self, results):
        d = results["fig10"].data
        mf = [v for v in d["philly"]["minimal_fraction"] if np.isfinite(v)]
        assert mf[-1] >= mf[0]

    def test_fig11_status_separation_exists(self, results):
        d = results["fig11"].data
        seps = [u["separation_log10"] for cells in d.values() for u in cells.values()]
        assert max(seps) > 0.3


class TestExpensiveExperiments:
    def test_fig12_shape(self):
        result = run_experiment(
            "fig12",
            days=DAYS,
            seed=SEED,
            systems=("theta",),
            fractions=(0.25,),
            models=("lr", "xgboost"),
            max_jobs=2000,
        )
        cells = result.data["theta"]
        for model in ("lr", "xgboost"):
            assert (
                cells[f"{model}/0.25/elapsed"]["under"]
                <= cells[f"{model}/0.25/baseline"]["under"] + 0.02
            )

    def test_table2_shape(self):
        result = run_experiment("table2", days=DAYS, seed=SEED, max_jobs=2500)
        for system, cells in result.data.items():
            assert cells["adaptive"]["util"] > 0.1, system
            # adaptive must not increase violations materially
            assert (
                cells["adaptive"]["violation"]
                <= cells["relaxed"]["violation"] * 1.1 + 1.0
            ), system


class TestCli:
    def test_cli_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table2" in out

    def test_cli_single(self, capsys):
        assert cli_main(["table1"]) == 0
        assert "Mira" in capsys.readouterr().out

    def test_cli_unknown(self, capsys):
        assert cli_main(["fig99"]) == 2


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        run_experiment("fig99")
