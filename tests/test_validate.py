"""Trace validation tests (the Table I consistency screen)."""

import numpy as np

from repro.frame import Frame
from repro.traces import MIRA, THETA, Trace, validate_trace
from repro.traces.synth import generate_trace


def trace_with(**overrides):
    cols = {
        "submit_time": [0.0, 1.0],
        "runtime": [10.0, 20.0],
        "cores": [512, 512],
    }
    cols.update(overrides)
    return Trace(system=MIRA, jobs=Frame(cols))


def test_clean_trace_is_consistent():
    report = validate_trace(trace_with())
    assert report.consistent
    assert str(report) == "trace is consistent"


def test_empty_trace_flagged():
    tr = Trace(
        system=MIRA,
        jobs=Frame({"submit_time": [], "runtime": [], "cores": []}),
    )
    assert "empty" in validate_trace(tr).codes()


def test_supercloud_style_oversized_request():
    # the exact inconsistency that got Supercloud excluded from the paper
    tr = trace_with(cores=[512, MIRA.schedulable_units + 1])
    report = validate_trace(tr)
    assert "oversized_request" in report.codes()
    assert not report.consistent


def test_negative_runtime():
    assert "negative_runtime" in validate_trace(
        trace_with(runtime=[-1.0, 5.0])
    ).codes()


def test_negative_wait():
    assert "negative_wait" in validate_trace(
        trace_with(wait_time=[-2.0, 0.0])
    ).codes()


def test_nonpositive_cores():
    assert "nonpositive_cores" in validate_trace(
        trace_with(cores=[0, 512])
    ).codes()


def test_bad_status():
    assert "bad_status" in validate_trace(trace_with(status=[0, 99])).codes()


def test_duplicate_job_ids():
    assert "duplicate_job_id" in validate_trace(
        trace_with(job_id=[1, 1])
    ).codes()


def test_nonpositive_walltime():
    assert "nonpositive_walltime" in validate_trace(
        trace_with(req_walltime=[0.0, 100.0])
    ).codes()


def test_nan_walltime_allowed():
    assert validate_trace(trace_with(req_walltime=[np.nan, np.nan])).consistent


def test_issue_counts_reported():
    report = validate_trace(trace_with(cores=[0, 0]))
    issue = next(i for i in report.issues if i.code == "nonpositive_cores")
    assert issue.count == 2
    assert "2 jobs" in str(report)


def test_all_synthetic_traces_validate():
    for name in ("mira", "theta", "philly"):
        tr = generate_trace(name, days=1.0, seed=3)
        assert validate_trace(tr).consistent, name
