"""Tests for workload-model fitting (EM mixtures + calibration cloning)."""

import numpy as np
import pytest

from repro.traces.synth import (
    fit_calibration,
    fit_lognormal_mixture,
    generate_trace,
)

RNG = lambda s=0: np.random.default_rng(s)


class TestMixtureEM:
    def test_recovers_two_components(self):
        rng = RNG(0)
        vals = np.concatenate(
            [
                rng.lognormal(np.log(60), 0.5, 4000),
                rng.lognormal(np.log(7200), 0.7, 6000),
            ]
        )
        fit = fit_lognormal_mixture(vals, n_components=2)
        assert fit.medians[0] == pytest.approx(60, rel=0.15)
        assert fit.medians[1] == pytest.approx(7200, rel=0.15)
        assert fit.weights[0] == pytest.approx(0.4, abs=0.05)

    def test_single_component(self):
        vals = RNG(1).lognormal(np.log(500), 0.8, 5000)
        fit = fit_lognormal_mixture(vals, n_components=1)
        assert fit.medians[0] == pytest.approx(500, rel=0.1)
        assert fit.sigmas[0] == pytest.approx(0.8, abs=0.1)

    def test_medians_sorted(self):
        vals = RNG(2).lognormal(5, 1.5, 3000)
        fit = fit_lognormal_mixture(vals, n_components=3)
        assert np.all(np.diff(fit.medians) >= 0)

    def test_weights_normalized(self):
        vals = RNG(3).lognormal(4, 1, 1000)
        fit = fit_lognormal_mixture(vals, n_components=2)
        assert fit.weights.sum() == pytest.approx(1.0)

    def test_ll_increases_with_components(self):
        rng = RNG(4)
        vals = np.concatenate(
            [rng.lognormal(2, 0.3, 2000), rng.lognormal(7, 0.3, 2000)]
        )
        ll1 = fit_lognormal_mixture(vals, n_components=1).log_likelihood
        ll2 = fit_lognormal_mixture(vals, n_components=2).log_likelihood
        assert ll2 > ll1

    def test_nonpositive_filtered(self):
        vals = np.concatenate([[0.0, -5.0], RNG(5).lognormal(3, 1, 500)])
        fit = fit_lognormal_mixture(vals, n_components=1)
        assert np.isfinite(fit.log_likelihood)

    def test_too_few_observations(self):
        with pytest.raises(ValueError):
            fit_lognormal_mixture(np.array([1.0, 2.0]), n_components=3)

    def test_to_distribution_sampleable(self):
        vals = RNG(6).lognormal(4, 1, 2000)
        dist = fit_lognormal_mixture(vals, 2).to_distribution(1.0, 1e6)
        samples = dist.sample(RNG(7), 5000)
        assert np.median(samples) == pytest.approx(np.median(vals), rel=0.2)


class TestCalibrationFit:
    @pytest.fixture(scope="class")
    def source(self):
        return generate_trace("theta", days=8, seed=4)

    @pytest.fixture(scope="class")
    def clone(self, source):
        cal = fit_calibration(source)
        return generate_trace(cal, days=8, seed=101)

    def test_job_rate_preserved(self, source, clone):
        assert clone.num_jobs == pytest.approx(source.num_jobs, rel=0.25)

    def test_runtime_distribution_close(self, source, clone):
        med_s = np.median(source["runtime"])
        med_c = np.median(clone["runtime"])
        assert med_c == pytest.approx(med_s, rel=0.5)

    def test_pass_rate_close(self, source, clone):
        ps = float((source["status"] == 0).mean())
        pc = float((clone["status"] == 0).mean())
        assert pc == pytest.approx(ps, abs=0.1)

    def test_wait_scale_close(self, source, clone):
        ms = np.median(source["wait_time"])
        mc = np.median(clone["wait_time"])
        assert mc == pytest.approx(ms, rel=0.6)

    def test_system_preserved(self, source, clone):
        assert clone.system is source.system

    def test_walltime_behaviour_preserved(self, source, clone):
        # Theta has walltimes; the clone must too, covering runtimes
        assert np.isfinite(clone["req_walltime"]).mean() > 0.99

    def test_dl_trace_without_walltimes(self):
        source = generate_trace("helios", days=0.5, seed=4)
        cal = fit_calibration(source)
        assert cal.walltime_factor is None

    def test_too_small_rejected(self):
        tiny = generate_trace("theta", days=0.5, seed=4, jobs_per_day=60)
        with pytest.raises(ValueError, match="at least 100"):
            fit_calibration(tiny)
