"""Unit tests for the columnar Frame substrate."""

import numpy as np
import pytest

from repro.frame import Frame


@pytest.fixture
def small():
    return Frame(
        {
            "a": [3, 1, 2, 1],
            "b": [30.0, 10.0, 20.0, 11.0],
            "name": ["x", "y", "z", "y"],
        }
    )


class TestConstruction:
    def test_basic_shape(self, small):
        assert small.num_rows == 4
        assert small.num_columns == 3
        assert small.column_names == ["a", "b", "name"]

    def test_empty(self):
        f = Frame()
        assert f.num_rows == 0
        assert f.num_columns == 0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            Frame({"a": [1, 2], "b": [1, 2, 3]})

    def test_2d_column_raises(self):
        with pytest.raises(ValueError, match="1-D"):
            Frame({"a": np.zeros((2, 2))})

    def test_from_rows(self):
        f = Frame.from_rows([{"a": 1, "b": 2.0}, {"a": 3, "b": 4.0}])
        assert f.num_rows == 2
        assert list(f["a"]) == [1, 3]

    def test_from_rows_empty_with_columns(self):
        f = Frame.from_rows([], columns=["a", "b"])
        assert f.column_names == ["a", "b"]
        assert f.num_rows == 0

    def test_missing_column_keyerror_lists_available(self, small):
        with pytest.raises(KeyError, match="no column 'zz'"):
            small["zz"]

    def test_contains(self, small):
        assert "a" in small
        assert "zz" not in small

    def test_copy_is_deep(self, small):
        c = small.copy()
        c["a"][0] = 99
        assert small["a"][0] == 3

    def test_equality(self, small):
        assert small == small.copy()
        assert small != small.filter(small["a"] > 1)

    def test_repr_mentions_rows(self, small):
        assert "4 rows" in repr(small)


class TestColumnOps:
    def test_select(self, small):
        s = small.select(["b", "a"])
        assert s.column_names == ["b", "a"]
        assert s.num_rows == 4

    def test_with_column_adds(self, small):
        f = small.with_column("c", np.arange(4))
        assert "c" in f and "c" not in small

    def test_with_column_replaces(self, small):
        f = small.with_column("a", np.zeros(4))
        assert f["a"].sum() == 0

    def test_with_column_scalar_broadcast(self, small):
        f = small.with_column("k", np.int64(7))
        assert np.all(f["k"] == 7)

    def test_drop(self, small):
        f = small.drop("name")
        assert f.column_names == ["a", "b"]

    def test_drop_missing_raises(self, small):
        with pytest.raises(KeyError):
            small.drop(["nope"])

    def test_rename(self, small):
        f = small.rename({"a": "alpha"})
        assert "alpha" in f and "a" not in f

    def test_apply(self, small):
        f = small.apply("b", lambda x: x * 2)
        assert f["b"][0] == 60.0


class TestRowOps:
    def test_filter(self, small):
        f = small.filter(small["a"] == 1)
        assert f.num_rows == 2
        assert list(f["b"]) == [10.0, 11.0]

    def test_filter_requires_bool(self, small):
        with pytest.raises(TypeError):
            small.filter(np.array([1, 0, 1, 0]))

    def test_filter_length_check(self, small):
        with pytest.raises(ValueError):
            small.filter(np.array([True]))

    def test_take(self, small):
        f = small.take(np.array([2, 0]))
        assert list(f["a"]) == [2, 3]

    def test_head(self, small):
        assert small.head(2).num_rows == 2
        assert small.head(100).num_rows == 4

    def test_sort_single_key(self, small):
        f = small.sort_by("a")
        assert list(f["a"]) == [1, 1, 2, 3]

    def test_sort_is_stable(self, small):
        f = small.sort_by("a")
        # the two a==1 rows keep original relative order (b: 10 then 11)
        assert list(f["b"][:2]) == [10.0, 11.0]

    def test_sort_descending(self, small):
        f = small.sort_by("a", descending=True)
        assert f["a"][0] == 3

    def test_sort_multi_key(self):
        f = Frame({"k": [1, 1, 0], "v": [2, 1, 9]}).sort_by(["v", "k"])
        # lexsort: last key ('k') is primary
        assert list(f["k"]) == [0, 1, 1]
        assert list(f["v"]) == [9, 1, 2]

    def test_row_and_iter(self, small):
        assert small.row(0) == {"a": 3, "b": 30.0, "name": "x"}
        assert len(list(small.iter_rows())) == 4


class TestAggregation:
    def test_quantile(self, small):
        assert small.quantile("b", 0.5) == pytest.approx(15.5)

    def test_quantile_empty_column_names_column(self):
        # regression: used to surface as a bare NumPy IndexError
        empty = Frame({"b": np.array([])})
        with pytest.raises(ValueError, match="empty column 'b'"):
            empty.quantile("b", 0.5)

    def test_quantile_empty_after_filter(self, small):
        filtered = small.filter(np.zeros(small.num_rows, dtype=bool))
        with pytest.raises(ValueError, match="empty column"):
            filtered.quantile("b", [0.25, 0.75])

    def test_value_counts(self, small):
        vc = small.value_counts("name")
        assert vc.row(0) == {"name": "y", "count": 2}

    def test_concat(self, small):
        f = Frame.concat([small, small])
        assert f.num_rows == 8

    def test_concat_mismatch_raises(self, small):
        with pytest.raises(ValueError):
            Frame.concat([small, small.drop("a")])

    def test_concat_empty_list(self):
        assert Frame.concat([]).num_rows == 0


class TestJoin:
    def test_inner_join(self):
        left = Frame({"k": [1, 2, 3], "v": [10, 20, 30]})
        right = Frame({"k": [2, 3, 4], "w": [200, 300, 400]})
        j = left.join(right, on="k")
        assert list(j["k"]) == [2, 3]
        assert list(j["w"]) == [200, 300]

    def test_left_join_fills_nan(self):
        left = Frame({"k": [1, 2], "v": [10, 20]})
        right = Frame({"k": [2], "w": [200.0]})
        j = left.join(right, on="k", how="left")
        assert np.isnan(j["w"][0]) and j["w"][1] == 200.0

    def test_left_join_int_promoted_to_float(self):
        left = Frame({"k": [1, 2]})
        right = Frame({"k": [2], "w": [7]})
        j = left.join(right, on="k", how="left")
        assert j["w"].dtype == float

    def test_join_duplicate_right_keys_raise(self):
        left = Frame({"k": [1]})
        right = Frame({"k": [1, 1], "w": [1, 2]})
        with pytest.raises(ValueError, match="unique"):
            left.join(right, on="k")

    def test_join_name_collision_suffixed(self):
        left = Frame({"k": [1], "v": [10]})
        right = Frame({"k": [1], "v": [99]})
        j = left.join(right, on="k")
        assert j["v"][0] == 10 and j["v_right"][0] == 99

    def test_unsupported_how(self):
        with pytest.raises(ValueError):
            Frame({"k": [1]}).join(Frame({"k": [1]}), on="k", how="outer")


class TestSummaries:
    def test_unique(self, small):
        assert list(small.unique("a")) == [1, 2, 3]

    def test_describe_numeric_only(self, small):
        d = small.describe()
        assert list(d["column"]) == ["a", "b"]
        assert d["count"][0] == 4
        assert d["median"][1] == 15.5

    def test_describe_skips_nan(self):
        f = Frame({"x": [1.0, float("nan"), 3.0]})
        d = f.describe()
        assert d["count"][0] == 2
        assert d["mean"][0] == 2.0

    def test_describe_empty_numeric(self):
        f = Frame({"x": np.array([], dtype=float)})
        d = f.describe()
        assert d["count"][0] == 0
        assert np.isnan(d["mean"][0])

    def test_drop_duplicates_single_key(self, small):
        f = small.drop_duplicates("a")
        assert f.num_rows == 3
        # first occurrence kept: a==1 row has b==10
        assert f["b"][f["a"] == 1][0] == 10.0

    def test_drop_duplicates_multi_key(self):
        f = Frame({"a": [1, 1, 1], "b": [2, 2, 3]}).drop_duplicates(["a", "b"])
        assert f.num_rows == 2

    def test_drop_duplicates_all_columns(self, small):
        doubled = Frame.concat([small, small])
        assert doubled.drop_duplicates().num_rows == small.num_rows
