"""Property-based invariants of the scheduling simulator.

Random workloads (hypothesis-generated) must satisfy, for every engine and
backfilling mode:

* capacity is never overcommitted at any instant;
* no job starts before submission;
* every job runs exactly once for exactly its runtime;
* strict EASY (relax=0) never delays a job past its first promised start;
  conservative backfilling is firm when walltime estimates are exact.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import (
    EASY,
    NO_BACKFILL,
    SimWorkload,
    adaptive_relaxed,
    relaxed,
    simulate,
    simulate_conservative,
)

CAPACITY = 16


@st.composite
def workloads(draw):
    n = draw(st.integers(2, 30))
    submit = np.cumsum(
        np.array(draw(st.lists(st.floats(0.0, 50.0), min_size=n, max_size=n)))
    )
    cores = np.array(
        draw(st.lists(st.integers(1, CAPACITY), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    runtime = np.array(
        draw(st.lists(st.floats(1.0, 500.0), min_size=n, max_size=n))
    )
    factor = np.array(
        draw(st.lists(st.floats(1.0, 3.0), min_size=n, max_size=n))
    )
    return SimWorkload(
        submit=submit,
        cores=cores,
        runtime=runtime,
        walltime=runtime * factor,
        user=np.zeros(n, dtype=np.int64),
    )


def max_concurrent_usage(start: np.ndarray, runtime: np.ndarray, cores: np.ndarray) -> int:
    """Peak simultaneous core allocation via an event sweep."""
    times = np.concatenate([start, start + runtime])
    deltas = np.concatenate([cores, -cores]).astype(float)
    # releases at the same instant happen before allocations
    order = np.argsort(times + 1e-9 * (deltas > 0), kind="stable")
    return int(np.cumsum(deltas[order]).max())


BACKFILLS = [NO_BACKFILL, EASY, relaxed(0.2), adaptive_relaxed(0.2)]


class TestEngineInvariants:
    @given(workloads())
    @settings(max_examples=60, deadline=None)
    def test_no_overcommit_any_mode(self, workload):
        for bf in BACKFILLS:
            res = simulate(workload, CAPACITY, "fcfs", bf)
            peak = max_concurrent_usage(
                res.start, workload.runtime, workload.cores
            )
            assert peak <= CAPACITY

    @given(workloads())
    @settings(max_examples=60, deadline=None)
    def test_no_early_starts(self, workload):
        for bf in BACKFILLS:
            res = simulate(workload, CAPACITY, "fcfs", bf)
            assert np.all(res.start >= workload.submit - 1e-9)

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_strict_easy_honors_promises(self, workload):
        res = simulate(workload, CAPACITY, "fcfs", EASY)
        has_promise = np.isfinite(res.promised)
        # EASY guarantee: a reserved head never starts after its promise
        assert np.all(
            res.start[has_promise] <= res.promised[has_promise] + 1e-6
        )

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_sjf_also_safe(self, workload):
        res = simulate(workload, CAPACITY, "sjf", EASY)
        peak = max_concurrent_usage(res.start, workload.runtime, workload.cores)
        assert peak <= CAPACITY


class TestConservativeInvariants:
    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_no_overcommit(self, workload):
        res = simulate_conservative(workload, CAPACITY)
        peak = max_concurrent_usage(res.start, workload.runtime, workload.cores)
        assert peak <= CAPACITY

    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_promises_firm_under_exact_estimates(self, workload):
        # With runtime == walltime there is no early-completion re-planning,
        # so conservative reservations are firm.  (With overestimated
        # walltimes, early completions legitimately re-order the plan in
        # priority order, so firmness is NOT an invariant there.)
        exact = SimWorkload(
            submit=workload.submit,
            cores=workload.cores,
            runtime=workload.runtime,
            walltime=workload.runtime,
            user=workload.user,
        )
        res = simulate_conservative(exact, CAPACITY)
        has_promise = np.isfinite(res.promised)
        assert np.all(
            res.start[has_promise] <= res.promised[has_promise] + 1e-6
        )

    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_no_early_starts(self, workload):
        res = simulate_conservative(workload, CAPACITY)
        assert np.all(res.start >= workload.submit - 1e-9)


class TestCrossEngineConsistency:
    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_makespan_respects_lower_bounds(self, workload):
        """Every mode's makespan >= max(total work / capacity, longest job)."""
        lower = max(
            float((workload.cores * workload.runtime).sum()) / CAPACITY,
            float(workload.runtime.max()),
        )
        for bf in BACKFILLS:
            res = simulate(workload, CAPACITY, "fcfs", bf)
            assert res.makespan >= lower - 1e-6

    @given(workloads())
    @settings(max_examples=20, deadline=None)
    def test_serial_cluster_equals_queue_order(self, workload):
        """On a 1-core cluster with 1-core jobs, FCFS is strictly serial."""
        wl1 = SimWorkload(
            submit=workload.submit,
            cores=np.ones(workload.n, dtype=np.int64),
            runtime=workload.runtime,
            walltime=workload.walltime,
            user=workload.user,
        )
        res = simulate(wl1, 1, "fcfs", NO_BACKFILL)
        order = np.argsort(wl1.submit, kind="stable")
        starts = res.start[order]
        ends = starts + wl1.runtime[order]
        assert np.all(starts[1:] >= ends[:-1] - 1e-6)
