"""Property-based invariants of the scheduling simulator.

Random workloads (hypothesis-generated) must satisfy, for every engine and
backfilling mode, the shared :mod:`repro.testkit.invariants` battery:

* capacity is never overcommitted at any instant;
* no job starts before submission;
* every job runs exactly once for exactly its runtime;
* strict EASY (relax=0) never delays a job past its first promised start;
  conservative backfilling is firm when walltime estimates are exact.

On top of the invariant checks, the EASY/no-backfill/relaxed/adaptive and
conservative engines are differentially compared against the
:mod:`repro.testkit.oracle` reference scheduler — start times must match
bit for bit (see ``docs/TESTING.md``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import (
    EASY,
    NO_BACKFILL,
    NO_FAULTS,
    FaultConfig,
    SimWorkload,
    adaptive_relaxed,
    relaxed,
    simulate,
    simulate_conservative,
    simulate_with_faults,
)
from repro.testkit import (
    check_case,
    check_promises,
    check_result,
    max_concurrent_usage,
    oracle_simulate,
)
from repro.testkit.fuzz import FUZZ_POLICIES

CAPACITY = 16


@st.composite
def workloads(draw):
    n = draw(st.integers(2, 30))
    submit = np.cumsum(
        np.array(draw(st.lists(st.floats(0.0, 50.0), min_size=n, max_size=n)))
    )
    cores = np.array(
        draw(st.lists(st.integers(1, CAPACITY), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    runtime = np.array(
        draw(st.lists(st.floats(1.0, 500.0), min_size=n, max_size=n))
    )
    factor = np.array(
        draw(st.lists(st.floats(1.0, 3.0), min_size=n, max_size=n))
    )
    return SimWorkload(
        submit=submit,
        cores=cores,
        runtime=runtime,
        walltime=runtime * factor,
        user=np.zeros(n, dtype=np.int64),
    )


def _exact_estimates(workload: SimWorkload) -> SimWorkload:
    """The same workload with walltime == runtime (no estimate slack)."""
    return SimWorkload(
        submit=workload.submit,
        cores=workload.cores,
        runtime=workload.runtime,
        walltime=workload.runtime,
        user=workload.user,
    )


BACKFILLS = [NO_BACKFILL, EASY, relaxed(0.2), adaptive_relaxed(0.2)]


class TestEngineInvariants:
    @given(workloads())
    @settings(max_examples=60, deadline=None)
    def test_shared_battery_every_mode(self, workload):
        """Capacity/early-start/served/conservation hold in every mode."""
        for bf in BACKFILLS:
            res = simulate(workload, CAPACITY, "fcfs", bf)
            assert check_result(res) == []

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_strict_easy_honors_promises(self, workload):
        res = simulate(workload, CAPACITY, "fcfs", EASY)
        # EASY guarantee: a reserved head never starts after its promise,
        # i.e. no backfilled job ever delays the FCFS head
        assert check_result(res, firm_promises=True) == []

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_sjf_also_safe(self, workload):
        res = simulate(workload, CAPACITY, "sjf", EASY)
        assert check_result(res) == []


class TestConservativeInvariants:
    """The conservative engine through the same shared battery."""

    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_shared_battery(self, workload):
        res = simulate_conservative(workload, CAPACITY)
        assert check_result(res) == []

    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_promises_firm_under_exact_estimates(self, workload):
        # With runtime == walltime there is no early-completion re-planning,
        # so conservative reservations are firm.  (With overestimated
        # walltimes, early completions legitimately re-order the plan in
        # priority order, so firmness is NOT an invariant there.)
        res = simulate_conservative(_exact_estimates(workload), CAPACITY)
        assert check_promises(res) == []

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_sjf_conservative_safe(self, workload):
        res = simulate_conservative(workload, CAPACITY, "sjf")
        assert check_result(res) == []


class TestDifferentialOracle:
    """Engines must match the testkit reference scheduler bit for bit."""

    @given(workloads())
    @settings(max_examples=25, deadline=None)
    def test_easy_engine_matches_oracle(self, workload):
        for bf in BACKFILLS:
            engine = simulate(workload, CAPACITY, "fcfs", bf)
            oracle = oracle_simulate(workload, CAPACITY, "fcfs", bf)
            assert np.array_equal(engine.start, oracle.start)
            assert np.array_equal(
                engine.promised, oracle.promised, equal_nan=True
            )
            assert np.array_equal(engine.backfilled, oracle.backfilled)

    @given(workloads())
    @settings(max_examples=25, deadline=None)
    def test_conservative_engine_matches_oracle(self, workload):
        engine = simulate_conservative(workload, CAPACITY)
        oracle = oracle_simulate(
            workload, CAPACITY, "fcfs", engine="conservative"
        )
        assert np.array_equal(engine.start, oracle.start)
        assert np.array_equal(engine.promised, oracle.promised, equal_nan=True)

    @given(workloads())
    @settings(max_examples=20, deadline=None)
    def test_fuzz_configs_clean(self, workload):
        """The fuzzer's own check_case finds nothing on healthy engines."""
        for policy in FUZZ_POLICIES.values():
            assert check_case(workload, CAPACITY, policy) == []


class TestCrossEngineConsistency:
    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_makespan_respects_lower_bounds(self, workload):
        """Every mode's makespan >= max(total work / capacity, longest job)."""
        lower = max(
            float((workload.cores * workload.runtime).sum()) / CAPACITY,
            float(workload.runtime.max()),
        )
        for bf in BACKFILLS:
            res = simulate(workload, CAPACITY, "fcfs", bf)
            assert res.makespan >= lower - 1e-6

    @given(workloads())
    @settings(max_examples=20, deadline=None)
    def test_serial_cluster_equals_queue_order(self, workload):
        """On a 1-core cluster with 1-core jobs, FCFS is strictly serial."""
        wl1 = SimWorkload(
            submit=workload.submit,
            cores=np.ones(workload.n, dtype=np.int64),
            runtime=workload.runtime,
            walltime=workload.walltime,
            user=workload.user,
        )
        res = simulate(wl1, 1, "fcfs", NO_BACKFILL)
        order = np.argsort(wl1.submit, kind="stable")
        starts = res.start[order]
        ends = starts + wl1.runtime[order]
        assert np.all(starts[1:] >= ends[:-1] - 1e-6)


#: a harsh fault regime on the scale of the generated workloads
HARSH_FAULTS = FaultConfig(
    node_mtbf=300.0,
    node_mttr=100.0,
    n_nodes=4,
    fail_prob=0.1,
    kill_prob=0.05,
    max_attempts=3,
    backoff_base=10.0,
    checkpoint_interval=50.0,
    seed=7,
)


class TestFaultInvariants:
    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_zero_failure_config_is_identity(self, workload):
        """A null fault config must reproduce simulate() bit-for-bit."""
        for bf in BACKFILLS:
            base = simulate(workload, CAPACITY, "fcfs", bf)
            res = simulate_with_faults(workload, CAPACITY, "fcfs", bf, NO_FAULTS)
            assert np.array_equal(res.start, base.start)
            assert np.array_equal(res.promised, base.promised, equal_nan=True)
            assert np.array_equal(res.backfilled, base.backfilled)
            assert res.makespan == base.makespan
            assert np.array_equal(res.wait, base.wait)

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_no_overcommit_under_faults(self, workload):
        """Attempts (including killed partial runs) never overcommit cores."""
        for bf in (EASY, adaptive_relaxed(0.2)):
            res = simulate_with_faults(
                workload, CAPACITY, "fcfs", bf, HARSH_FAULTS
            )
            if len(res.attempt_job) == 0:
                continue
            peak = max_concurrent_usage(
                res.attempt_start,
                res.attempt_elapsed,
                workload.cores[res.attempt_job],
            )
            assert peak <= CAPACITY

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_all_jobs_reach_a_terminal_state(self, workload):
        res = simulate_with_faults(
            workload, CAPACITY, "fcfs", EASY, HARSH_FAULTS
        )
        assert np.all(res.status >= 0)
        assert np.all(res.attempts >= 1)
        assert np.all(res.attempts <= HARSH_FAULTS.max_attempts)
        assert np.all(np.isfinite(res.end))
        assert np.all(res.start >= workload.submit - 1e-9)

    @given(workloads())
    @settings(max_examples=20, deadline=None)
    def test_fault_runs_are_deterministic(self, workload):
        a = simulate_with_faults(workload, CAPACITY, "fcfs", EASY, HARSH_FAULTS)
        b = simulate_with_faults(workload, CAPACITY, "fcfs", EASY, HARSH_FAULTS)
        assert np.array_equal(a.start, b.start)
        assert np.array_equal(a.end, b.end)
        assert np.array_equal(a.status, b.status)
        assert np.array_equal(a.attempt_outcome, b.attempt_outcome)

    @given(workloads())
    @settings(max_examples=20, deadline=None)
    def test_waste_accounting_is_consistent(self, workload):
        res = simulate_with_faults(
            workload, CAPACITY, "fcfs", EASY, HARSH_FAULTS
        )
        consumed = res.consumed_core_seconds
        assert res.goodput_core_seconds <= consumed + 1e-6
        assert consumed == pytest.approx(
            res.goodput_core_seconds + res.wasted_core_seconds
        )
