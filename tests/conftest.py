"""Shared test fixtures: a hand-rolled per-test wall-clock timeout.

CI must fail fast on a hung test (e.g. a deadlocked ``multiprocessing``
pool in the sweep-runner tests) instead of burning the job's whole
``timeout-minutes`` budget.  ``pytest-timeout`` is not part of this
project's dependency set, so the guard is a plain ``SIGALRM`` fixture:

* ``REPRO_TEST_TIMEOUT`` (seconds, default 300) bounds every test;
  ``0`` disables the guard entirely;
* only armed on Unix in the main thread (``signal.alarm`` is a no-op
  requirement everywhere pytest runs tests elsewhere);
* nested alarms are not supported — the fixture restores the previous
  handler on teardown, which is enough for pytest's flat test loop.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

_DEFAULT_TIMEOUT = 300


def _timeout_seconds() -> int:
    try:
        return int(os.environ.get("REPRO_TEST_TIMEOUT", str(_DEFAULT_TIMEOUT)))
    except ValueError:
        return _DEFAULT_TIMEOUT


@pytest.fixture(autouse=True)
def _per_test_timeout(request):
    seconds = _timeout_seconds()
    if (
        seconds <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded {seconds}s wall-clock limit "
            f"(REPRO_TEST_TIMEOUT={seconds}): {request.node.nodeid}"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
