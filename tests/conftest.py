"""Shared test fixtures: a hand-rolled per-test wall-clock timeout.

CI must fail fast on a hung test (e.g. a deadlocked ``multiprocessing``
pool in the sweep-runner tests) instead of burning the job's whole
``timeout-minutes`` budget.  ``pytest-timeout`` is not part of this
project's dependency set, so the guard is a plain ``SIGALRM`` fixture:

* ``REPRO_TEST_TIMEOUT`` (seconds, default 300) bounds every test;
  ``0`` disables the guard entirely;
* a single test may override its own budget with
  ``@pytest.mark.timeout_s(N)`` (e.g. a slow differential-fuzz test) so
  one outlier never forces a global ``REPRO_TEST_TIMEOUT`` bump; the
  ``REPRO_TEST_TIMEOUT=0`` kill-switch still wins;
* only armed on Unix in the main thread (``signal.alarm`` is a no-op
  requirement everywhere pytest runs tests elsewhere);
* nested alarms are not supported — the fixture restores the previous
  handler on teardown, which is enough for pytest's flat test loop.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

_DEFAULT_TIMEOUT = 300


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout_s(seconds): per-test wall-clock limit overriding the "
        "REPRO_TEST_TIMEOUT default (REPRO_TEST_TIMEOUT=0 disables all "
        "timeouts, including marked ones)",
    )


def _timeout_seconds(request) -> int:
    try:
        env = int(os.environ.get("REPRO_TEST_TIMEOUT", str(_DEFAULT_TIMEOUT)))
    except ValueError:
        env = _DEFAULT_TIMEOUT
    if env <= 0:
        return 0  # global kill-switch
    marker = request.node.get_closest_marker("timeout_s")
    if marker is not None and marker.args:
        try:
            return max(int(marker.args[0]), 0)
        except (TypeError, ValueError):
            return env
    return env


@pytest.fixture(autouse=True)
def _per_test_timeout(request):
    seconds = _timeout_seconds(request)
    if (
        seconds <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded {seconds}s wall-clock limit "
            f"(REPRO_TEST_TIMEOUT / @pytest.mark.timeout_s): "
            f"{request.node.nodeid}"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
