"""Tests for the CrossSystemStudy orchestrator and takeaway evaluator."""

import pytest

from repro import CrossSystemStudy
from repro.core import evaluate_takeaways
from repro.traces.synth import generate_trace


@pytest.fixture(scope="module")
def study():
    return CrossSystemStudy.generate(days=6, seed=7)


def test_generate_produces_five_systems(study):
    assert set(study.systems()) == {
        "mira",
        "theta",
        "blue_waters",
        "philly",
        "helios",
    }


def test_from_traces_wraps_external():
    tr = generate_trace("theta", days=1, seed=0)
    study = CrossSystemStudy.from_traces({"theta": tr})
    assert study.systems() == ["theta"]
    assert study.geometry()["theta"].runtime.median > 0


def test_every_figure_method_runs(study):
    assert len(study.geometry()) == 5
    assert len(study.core_hours()) == 5
    assert len(study.utilization(n_buckets=10)) == 5
    assert len(study.waiting()) == 5
    assert len(study.waiting_by_class()) == 5
    assert len(study.failures()) == 5
    assert len(study.failures_by_class()) == 5
    assert len(study.repetition()) == 5
    assert len(study.size_vs_queue()) == 5
    assert len(study.runtime_vs_queue()) == 5
    assert len(study.user_status_profiles(n_users=2)) == 5


def test_takeaways_mostly_hold_at_test_scale(study):
    results = study.takeaways()
    assert len(results) == 8
    assert [r.number for r in results] == list(range(1, 9))
    # short synthetic windows are noisy; the vast majority must still hold
    holding = sum(r.holds for r in results)
    assert holding >= 7


def test_takeaways_all_have_evidence(study):
    for r in study.takeaways():
        assert r.evidence, r.number
        assert str(r).startswith(f"Takeaway {r.number}")


def test_takeaways_on_subset():
    study = CrossSystemStudy.generate(days=3, seed=1, systems=["mira", "philly"])
    results = evaluate_takeaways(study.traces)
    assert len(results) == 8  # evaluator degrades gracefully on subsets


def test_prediction_entry_point(study):
    out = study.prediction(
        systems=["theta"], fractions=(0.25,), models=("lr",), max_jobs=1000
    )
    assert "theta" in out
    assert out["theta"].results


def test_backfilling_entry_point(study):
    out = study.backfilling(systems=["theta"], max_jobs=800)
    assert out["theta"].relaxed.n_jobs == 800
    assert 0 < out["theta"].adaptive.util <= 1.0


def test_backfilling_defaults_to_simulatable_systems(study):
    out = study.backfilling(max_jobs=400)
    assert set(out) == {"blue_waters", "mira", "theta"}
