"""CSV round-trip tests."""

import numpy as np
import pytest

from repro.frame import Frame, from_csv_string, read_csv, to_csv_string, write_csv


@pytest.fixture
def f():
    return Frame(
        {
            "i": np.array([1, -2, 3], dtype=np.int64),
            "x": np.array([1.5, 2.25, -0.125]),
            "s": np.array(["alpha", "beta, with comma", "gamma"]),
            "b": np.array([True, False, True]),
        }
    )


def test_roundtrip_string(f):
    g = from_csv_string(to_csv_string(f))
    assert g == f


def test_roundtrip_file(tmp_path, f):
    path = tmp_path / "t.csv"
    write_csv(f, path)
    assert read_csv(path) == f


def test_dtype_inference(f):
    g = from_csv_string(to_csv_string(f))
    assert np.issubdtype(g["i"].dtype, np.integer)
    assert np.issubdtype(g["x"].dtype, np.floating)
    assert g["b"].dtype == bool
    assert g["s"].dtype.kind == "U"


def test_header_only():
    g = from_csv_string("a,b\n")
    assert g.column_names == ["a", "b"]
    assert g.num_rows == 0


def test_empty_string():
    assert from_csv_string("").num_rows == 0


def test_float_precision_roundtrip():
    f = Frame({"x": [0.1 + 0.2, 1e-300, 1e300]})
    g = from_csv_string(to_csv_string(f))
    assert np.array_equal(g["x"], f["x"])


def test_comma_in_string_quoted(f):
    text = to_csv_string(f)
    assert '"beta, with comma"' in text
