"""Tests for the synthetic trace generator and behavioural models."""

import numpy as np
import pytest

from repro.traces import JobStatus, validate_trace
from repro.traces.synth import (
    CALIBRATIONS,
    ConstantDist,
    LogNormalDist,
    QueueFeedback,
    StatusModel,
    WaitModel,
    generate_all_traces,
    generate_trace,
    get_calibration,
    queue_length_at_submit,
)

RNG = lambda s=0: np.random.default_rng(s)


class TestStatusModel:
    MODEL = StatusModel(
        pass_by_length=(0.9, 0.5, 0.0),
        killed_share=(0.5, 0.5, 1.0),
    )

    def test_pass_rate_falls_with_length(self):
        rng = RNG()
        short = np.full(20_000, 100.0)
        long = np.full(20_000, 2 * 86400.0)
        s_short, _ = self.MODEL.sample(rng, short, np.zeros(20_000, dtype=int))
        s_long, _ = self.MODEL.sample(rng, long, np.zeros(20_000, dtype=int))
        assert np.mean(s_short == 0) == pytest.approx(0.9, abs=0.01)
        assert np.mean(s_long == 0) == 0.0

    def test_long_jobs_killed_not_failed(self):
        rng = RNG()
        s, _ = self.MODEL.sample(
            rng, np.full(5000, 2 * 86400.0), np.zeros(5000, dtype=int)
        )
        assert np.all(s == int(JobStatus.KILLED))

    def test_failed_jobs_truncated_early(self):
        rng = RNG()
        rt = np.full(50_000, 1000.0)
        status, adj = self.MODEL.sample(rng, rt, np.zeros(50_000, dtype=int))
        failed = status == int(JobStatus.FAILED)
        assert failed.any()
        assert np.all(adj[failed] <= 0.4 * 1000.0)
        assert np.all(adj[~failed] == 1000.0)

    def test_size_penalty_reduces_pass(self):
        model = StatusModel(
            pass_by_length=(0.8, 0.8, 0.8),
            killed_share=(0.5, 0.5, 0.5),
            size_penalty=(1.0, 1.0, 0.5),
        )
        rng = RNG()
        rt = np.full(30_000, 100.0)
        s_small, _ = model.sample(rng, rt, np.zeros(30_000, dtype=int))
        s_large, _ = model.sample(rng, rt, np.full(30_000, 2))
        assert np.mean(s_small == 0) > np.mean(s_large == 0) + 0.3


class TestWaitModel:
    def test_multipliers_shift_waits(self):
        wm = WaitModel(
            base=ConstantDist(100.0),
            zero_wait_fraction=0.0,
            size_mult=(1.0, 3.0, 1.0),
            length_mult=(1.0, 1.0, 1.0),
        )
        rng = RNG()
        rt = np.full(10, 100.0)
        w_small = wm.sample(rng, np.zeros(10, dtype=int), rt)
        w_mid = wm.sample(rng, np.ones(10, dtype=int), rt)
        assert np.allclose(w_mid, 3 * w_small)

    def test_zero_wait_fraction(self):
        wm = WaitModel(base=ConstantDist(1000.0), zero_wait_fraction=0.5)
        rng = RNG()
        w = wm.sample(rng, np.zeros(20_000, dtype=int), np.full(20_000, 100.0))
        assert np.mean(w < 5.0) == pytest.approx(0.5, abs=0.02)

    def test_non_negative(self):
        wm = WaitModel(base=LogNormalDist(10.0, 2.0), zero_wait_fraction=0.3)
        w = wm.sample(RNG(), np.zeros(1000, dtype=int), np.full(1000, 5.0))
        assert np.all(w >= 0)


class TestQueueLength:
    def test_serial_no_overlap(self):
        submit = np.array([0.0, 100.0, 200.0])
        wait = np.array([1.0, 1.0, 1.0])
        q = queue_length_at_submit(submit, wait)
        assert list(q) == [1, 1, 1]  # only the job itself queued

    def test_burst_builds_queue(self):
        submit = np.array([0.0, 1.0, 2.0, 3.0])
        wait = np.full(4, 100.0)
        assert list(queue_length_at_submit(submit, wait)) == [1, 2, 3, 4]

    def test_zero_wait_never_queued(self):
        # a job starting instantly spends no time queued, not even its own
        submit = np.array([0.0, 1.0, 2.0])
        wait = np.zeros(3)
        q = queue_length_at_submit(submit, wait)
        assert list(q) == [0, 0, 0]

    def test_matches_bruteforce(self):
        rng = RNG(5)
        submit = np.sort(rng.uniform(0, 1000, 200))
        wait = rng.exponential(50, 200)
        q = queue_length_at_submit(submit, wait)
        starts = submit + wait
        brute = [
            int(np.sum((submit <= t) & (starts > t))) for t in submit
        ]
        assert list(q) == brute


class TestQueueFeedback:
    def test_disabled_is_identity(self):
        fb = QueueFeedback()
        cores = np.array([4, 8])
        rt = np.array([10.0, 20.0])
        c2, r2 = fb.apply(RNG(), np.array([5, 10]), cores, rt)
        assert np.array_equal(c2, cores) and np.array_equal(r2, rt)

    def test_long_queue_shrinks_sizes(self):
        fb = QueueFeedback(minimal_size_prob=(0.0, 0.0, 1.0))
        n = 1000
        qlen = np.concatenate([np.ones(n), np.full(n, 300)])
        cores = np.full(2 * n, 16)
        rt = np.full(2 * n, 100.0)
        c2, _ = fb.apply(RNG(), qlen, cores, rt)
        assert np.all(c2[:n] == 16)      # short-queue jobs untouched
        assert np.all(c2[n:] == 1)       # long-queue jobs downgraded

    def test_runtime_shortening_only_reduces(self):
        fb = QueueFeedback(
            minimal_size_prob=(0.0, 0.0, 0.0),
            short_runtime_prob=(1.0, 1.0, 1.0),
            short_runtime_dist=ConstantDist(50.0),
        )
        rt = np.array([10.0, 1000.0])
        _, r2 = fb.apply(RNG(), np.array([1, 300]), np.array([1, 1]), rt)
        assert r2[0] == 10.0   # min(10, 50)
        assert r2[1] == 50.0   # min(1000, 50)

    def test_empty_queue_signal(self):
        fb = QueueFeedback(minimal_size_prob=(1.0, 1.0, 1.0))
        c2, _ = fb.apply(RNG(), np.zeros(3), np.array([4, 4, 4]), np.ones(3))
        assert np.all(c2 == 4)  # no max queue -> no feedback


class TestGenerateTrace:
    def test_deterministic_given_seed(self):
        a = generate_trace("theta", days=1.0, seed=11)
        b = generate_trace("theta", days=1.0, seed=11)
        assert a.jobs == b.jobs

    def test_different_seeds_differ(self):
        a = generate_trace("theta", days=1.0, seed=1)
        b = generate_trace("theta", days=1.0, seed=2)
        assert a.jobs != b.jobs

    def test_all_calibrations_generate_valid_traces(self):
        for name in CALIBRATIONS:
            tr = generate_trace(name, days=0.5, seed=4)
            assert tr.num_jobs > 0, name
            assert validate_trace(tr).consistent, name

    def test_submit_sorted(self):
        tr = generate_trace("philly", days=2.0, seed=0)
        assert np.all(np.diff(tr["submit_time"]) >= 0)

    def test_window_respected(self):
        days = 2.0
        tr = generate_trace("mira", days=days, seed=0)
        assert tr["submit_time"].max() < days * 86400

    def test_rate_override(self):
        lo = generate_trace("theta", days=2.0, seed=0, jobs_per_day=50)
        hi = generate_trace("theta", days=2.0, seed=0, jobs_per_day=500)
        assert hi.num_jobs > 3 * lo.num_jobs

    def test_dl_systems_have_no_walltime(self):
        tr = generate_trace("helios", days=0.5, seed=0)
        assert np.all(~np.isfinite(tr["req_walltime"]))

    def test_hpc_walltime_covers_runtime(self):
        tr = generate_trace("mira", days=2.0, seed=0)
        passed = tr["status"] == int(JobStatus.PASSED)
        # walltime factor >= 1.05 and rounded up -> walltime > runtime
        assert np.all(tr["req_walltime"][passed] >= tr["runtime"][passed])

    def test_philly_virtual_clusters(self):
        tr = generate_trace("philly", days=2.0, seed=0)
        vcs = np.unique(tr["vc"])
        assert vcs.min() >= 1 and vcs.max() <= 14
        assert len(vcs) > 5

    def test_philly_users_pinned_to_vc(self):
        tr = generate_trace("philly", days=2.0, seed=0)
        for u in np.unique(tr["user_id"])[:20]:
            assert len(np.unique(tr["vc"][tr["user_id"] == u])) == 1

    def test_blue_waters_gpu_pool_tagged(self):
        tr = generate_trace("blue_waters", days=0.5, seed=0)
        assert "pool" in tr.jobs
        frac = tr.jobs["pool"].mean()
        assert 0.05 < frac < 0.25

    def test_generate_all(self):
        traces = generate_all_traces(days=0.25, seed=0, systems=["mira", "philly"])
        assert set(traces) == {"mira", "philly"}

    def test_meta_records_provenance(self):
        tr = generate_trace("helios", days=0.5, seed=42)
        assert tr.meta["seed"] == 42
        assert tr.meta["system"] == "Helios"

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            get_calibration("summit")

    def test_zero_jobs_raises(self):
        with pytest.raises(ValueError, match="zero jobs"):
            generate_trace("mira", days=0.001, seed=0, jobs_per_day=0.001)
