"""Columnar trace recording + job-characterization analytics.

The contract under test (docs/OBSERVABILITY.md, "Columnar recording"):

* :class:`repro.obs.ColumnarRecorder` decodes back to the *identical*
  typed dict stream the reference engine hands to a ``Tracer`` — same
  kinds, same fields, same key order, same values — so every stream
  consumer (``check_events``, ``utilization_series``, ``repro analyze``)
  works unchanged on either source;
* the fast engine with recording attached stays **bit-identical** to the
  uninstrumented run, and its metrics payload matches the reference
  engine instrument-for-instrument;
* events outside the five hot-path layouts (run headers, fault-engine
  events) round-trip through the overflow side list, so the recorder
  serves *any* engine as a tracer;
* ``.npz`` persistence is exact, and the CLI (``--trace-out x.npz``,
  ``repro analyze``) wires it all together.

A byte-exact golden of one seeded fast-engine stream lives under
``tests/goldens/columnar_stream.jsonl``; regenerate deliberate changes
with ``REPRO_UPDATE_GOLDENS=1`` (see docs/TESTING.md).
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.obs import (
    ColumnarRecorder,
    JsonlTracer,
    Metrics,
    RingBufferTracer,
    analyze_events,
    check_events,
    load_events,
    render_timeline,
    run_start_capacity,
    summarize_events,
    utilization_series,
)
from repro.sched import (
    EASY,
    NO_BACKFILL,
    FaultConfig,
    SimWorkload,
    adaptive_relaxed,
    relaxed,
    simulate,
    simulate_fast,
    simulate_with_faults,
)
from repro.testkit import random_workload

CAPACITY = 16

GOLDEN_DIR = Path(__file__).parent / "goldens"

BACKFILLS = {
    "none": NO_BACKFILL,
    "easy": EASY,
    "relaxed": relaxed(0.5),
    "adaptive": adaptive_relaxed(0.4),
}


def _workload(n: int = 200, seed: int = 123) -> SimWorkload:
    """Seeded mid-size workload with enough pressure for reservations
    and backfills (integer-valued fields: fully deterministic)."""
    rng = np.random.default_rng(seed)
    submit = np.cumsum(rng.integers(0, 60, n)).astype(float)
    runtime = rng.integers(1, 500, n).astype(float)
    return SimWorkload(
        submit=submit,
        cores=rng.integers(1, 12, n).astype(np.int64),
        runtime=runtime,
        walltime=runtime + rng.integers(0, 120, n),
        user=rng.integers(0, 6, n).astype(np.int64),
    )


def _canon(events) -> list[str]:
    """Canonical JSON lines with the run_start engine field masked (the
    one documented fast-vs-reference stream difference)."""
    return [
        json.dumps(
            {**e, "engine": "*"} if e.get("kind") == "run_start" else e,
            separators=(",", ":"),
        )
        for e in events
    ]


def _reference_stream(wl, capacity, policy, backfill):
    tracer = RingBufferTracer(capacity=1 << 20)
    simulate(wl, capacity, policy, backfill, tracer=tracer)
    return list(tracer.events)


def _fast_stream(wl, capacity, policy, backfill):
    rec = ColumnarRecorder()
    simulate_fast(wl, capacity, policy, backfill, tracer=rec)
    return rec.to_events()


# ----------------------------------------------------------------------
# recorder unit behavior


class TestRecorder:
    def test_emit_decodes_with_reference_key_order(self):
        rec = ColumnarRecorder()
        rec.emit("submit", 1.0, 7, submitted=1.0, cores=4, queue=2, user=3)
        rec.emit("start", 2.0, 7, cores=4, free=12, queue=1, wait=1.0)
        rec.emit("finish", 5.0, 7, cores=4, free=16, outcome="completed")
        (sub, start, fin) = rec.to_events()
        assert list(sub) == ["kind", "t", "job", "submitted", "cores", "queue", "user"]
        assert list(start) == ["kind", "t", "job", "cores", "free", "queue", "wait"]
        assert list(fin) == ["kind", "t", "job", "cores", "free", "outcome"]
        assert start == {
            "kind": "start", "t": 2.0, "job": 7,
            "cores": 4, "free": 12, "queue": 1, "wait": 1.0,
        }
        assert fin["outcome"] == "completed"

    def test_overflow_preserves_stream_position(self):
        rec = ColumnarRecorder()
        rec.emit("run_start", 0.0, capacity=8, n_jobs=1)  # overflow (no job)
        rec.emit("submit", 1.0, 0, submitted=1.0, cores=1, queue=1, user=0)
        rec.emit("retry", 2.0, 0, attempt=1)  # overflow (not a hot kind)
        rec.emit("start", 3.0, 0, cores=1, free=7, queue=1, wait=2.0)
        rec.emit("run_end", 4.0, makespan=4.0)  # overflow (trailing)
        kinds = [e["kind"] for e in rec.to_events()]
        assert kinds == ["run_start", "submit", "retry", "start", "run_end"]
        assert rec.count == 5
        assert len(rec) == 5

    def test_hot_kind_with_extra_fields_goes_to_overflow(self):
        rec = ColumnarRecorder()
        rec.emit(
            "submit", 1.0, 0,
            submitted=1.0, cores=1, queue=1, user=0, resubmitted=True,
        )
        events = rec.to_events()
        assert events[0]["resubmitted"] is True  # kept verbatim

    def test_growth_from_tiny_capacity(self):
        rec = ColumnarRecorder(capacity=16)
        rows = [(2, float(i), i, 1, 1, 0, float(i), 0.0) for i in range(1000)]
        rec.append_rows(rows)
        events = rec.to_events()
        assert len(events) == 1000
        assert events[-1]["t"] == 999.0

    def test_append_batch_vectorized(self):
        rec = ColumnarRecorder()
        jobs = np.arange(5, dtype=np.int64)
        rec.append_batch(
            "submit", t=2.0, job=jobs, i0=np.full(5, 3),
            i1=np.arange(1, 6), i2=0, f0=2.0,
        )
        events = rec.to_events()
        assert [e["job"] for e in events] == [0, 1, 2, 3, 4]
        assert [e["queue"] for e in events] == [1, 2, 3, 4, 5]
        assert all(e["cores"] == 3 for e in events)

    def test_npz_roundtrip_exact(self, tmp_path):
        wl = _workload(n=80, seed=5)
        rec = ColumnarRecorder()
        simulate_fast(wl, CAPACITY, "sjf", EASY, tracer=rec)
        path = tmp_path / "trace.npz"
        rec.save(path)
        loaded = ColumnarRecorder.load(path)
        assert _canon(loaded.to_events()) == _canon(rec.to_events())

    def test_close_writes_default_path(self, tmp_path):
        path = tmp_path / "auto.npz"
        with ColumnarRecorder(path) as rec:
            rec.emit("start", 1.0, 0, cores=1, free=7, queue=0, wait=0.0)
        assert path.exists()
        assert ColumnarRecorder.load(path).to_events() == rec.to_events()

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.npz"
        rec = ColumnarRecorder()
        rec.emit("start", 1.0, 0, cores=1, free=7, queue=0, wait=0.0)
        rec.save(path)
        import numpy as np_

        with np_.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(str(arrays["meta"][()]))
        meta["version"] = 999
        arrays["meta"] = np_.asarray(json.dumps(meta))
        with open(path, "wb") as fh:
            np_.savez(fh, **arrays)
        with pytest.raises(ValueError, match="version"):
            ColumnarRecorder.load(path)

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError, match="path"):
            ColumnarRecorder().save()


# ----------------------------------------------------------------------
# fast-engine stream identity


class TestFastStreamIdentity:
    def test_matrix_identical_to_reference(self):
        """Policies x backfill modes x seeds: decoded columnar streams are
        byte-identical to the reference engine's live emission."""
        for seed in range(6):
            wl = random_workload(
                np.random.default_rng((99, seed)), capacity=CAPACITY
            )
            for policy in ("fcfs", "sjf", "wfp3", "fairshare"):
                for bf_name, bf in BACKFILLS.items():
                    ref = _reference_stream(wl, CAPACITY, policy, bf)
                    fast = _fast_stream(wl, CAPACITY, policy, bf)
                    label = f"seed {seed} {policy}+{bf_name}"
                    assert _canon(fast) == _canon(ref), label
                    assert check_events(fast) == [], label

    def test_stream_consumers_work_unchanged(self):
        wl = _workload(n=120, seed=3)
        fast = _fast_stream(wl, CAPACITY, "fcfs", EASY)
        ref = _reference_stream(wl, CAPACITY, "fcfs", EASY)
        assert summarize_events(fast) == summarize_events(ref)
        t_f, u_f = utilization_series(fast)
        t_r, u_r = utilization_series(ref)
        assert np.array_equal(t_f, t_r) and np.array_equal(u_f, u_r)
        assert render_timeline(fast) == render_timeline(ref)

    def test_jsonl_tracer_adapter_byte_identical(self, tmp_path):
        """A plain JsonlTracer passed to the fast engine receives the
        decoded stream on completion — bytes match the reference file."""
        wl = _workload(n=100, seed=11)
        ref_path, fast_path = tmp_path / "ref.jsonl", tmp_path / "fast.jsonl"
        with JsonlTracer(ref_path) as tracer:
            simulate(wl, CAPACITY, "sjf", EASY, tracer=tracer)
        with JsonlTracer(fast_path) as tracer:
            simulate_fast(wl, CAPACITY, "sjf", EASY, tracer=tracer)
        ref_lines = ref_path.read_text().splitlines()
        fast_lines = fast_path.read_text().splitlines()
        assert ref_lines[0].replace('"easy"', '"fast"') == fast_lines[0]
        assert ref_lines[1:] == fast_lines[1:]

    def test_metrics_payload_identical_to_reference(self):
        wl = _workload(n=150, seed=7)
        for policy, bf in (("fcfs", EASY), ("sjf", relaxed(0.5))):
            m_ref, m_fast = Metrics(), Metrics()
            simulate(wl, CAPACITY, policy, bf, metrics=m_ref)
            simulate_fast(wl, CAPACITY, policy, bf, metrics=m_fast)
            assert m_fast.to_dict() == m_ref.to_dict(), policy

    def test_recording_does_not_change_schedule(self):
        wl = _workload(n=150, seed=9)
        plain = simulate_fast(wl, CAPACITY, "sjf", EASY, track_queue=True)
        rec = ColumnarRecorder()
        traced = simulate_fast(
            wl, CAPACITY, "sjf", EASY, track_queue=True,
            tracer=rec, metrics=Metrics(),
        )
        assert np.array_equal(plain.start, traced.start)
        assert np.array_equal(plain.promised, traced.promised, equal_nan=True)
        assert np.array_equal(plain.backfilled, traced.backfilled)
        assert np.array_equal(plain.queue_samples, traced.queue_samples)

    def test_disabled_tracer_skips_recording(self):
        class Disabled:
            enabled = False
            events = ()

            def emit(self, *a, **k):  # pragma: no cover - must not run
                raise AssertionError("disabled tracer received an event")

        simulate_fast(_workload(n=30, seed=1), CAPACITY, tracer=Disabled())


# ----------------------------------------------------------------------
# any-engine tracer: fault runs through the overflow path


class TestFaultTraces:
    def test_fault_run_roundtrips_through_recorder(self):
        wl = _workload(n=60, seed=21)
        cfg = FaultConfig(node_mtbf=3600.0, n_nodes=4)
        ring = RingBufferTracer(capacity=1 << 20)
        simulate_with_faults(wl, CAPACITY, "fcfs", EASY, faults=cfg, tracer=ring)
        rec = ColumnarRecorder()
        simulate_with_faults(wl, CAPACITY, "fcfs", EASY, faults=cfg, tracer=rec)
        assert _canon(rec.to_events()) == _canon(list(ring.events))


# ----------------------------------------------------------------------
# analytics


class TestAnalyze:
    def _analysis(self):
        wl = _workload(n=150, seed=13)
        rec = ColumnarRecorder()
        res = simulate_fast(wl, CAPACITY, "fcfs", EASY, tracer=rec)
        return wl, res, analyze_events(rec.to_events())

    def test_fold_matches_schedule(self):
        wl, res, a = self._analysis()
        assert a.n_jobs == wl.n
        assert a.capacity == CAPACITY
        assert a.engine == "fast"
        assert a.policy == "fcfs"
        assert a.kinds["submit"] == wl.n
        assert a.kinds["start"] == wl.n
        assert a.waits["n"] == wl.n
        assert a.backfill["jobs"] == int(res.backfilled.sum())
        waits = res.start - wl.submit
        assert a.waits["mean"] == pytest.approx(float(waits.mean()))
        assert a.waits["max"] == pytest.approx(float(waits.max()))

    def test_start_classes_partition_jobs(self):
        _, _, a = self._analysis()
        st = a.starts
        assert (
            st["direct"]["jobs"] + st["reserved"]["jobs"]
            + st["backfilled"]["jobs"] == a.n_jobs
        )
        assert st["backfilled"]["jobs"] == a.backfill["jobs"]

    def test_identical_on_reference_stream(self):
        wl = _workload(n=150, seed=13)
        ref = analyze_events(_reference_stream(wl, CAPACITY, "fcfs", EASY))
        _, _, fast = self._analysis()
        ref_d, fast_d = ref.to_dict(), fast.to_dict()
        ref_d.pop("engine"), fast_d.pop("engine")
        assert ref_d == fast_d

    def test_render_and_json(self):
        _, _, a = self._analysis()
        text = a.render()
        for title in ("trace", "job lifecycle", "start classes", "queue"):
            assert title in text
        json.dumps(a.to_dict())  # serializable, no numpy leakage

    def test_fault_stream_analytics(self):
        wl = _workload(n=60, seed=21)
        cfg = FaultConfig(node_mtbf=3600.0, n_nodes=4)
        rec = ColumnarRecorder()
        simulate_with_faults(wl, CAPACITY, "fcfs", EASY, faults=cfg, tracer=rec)
        a = analyze_events(rec.to_events())
        assert a.faults  # fault section present
        assert a.faults["node_failures"] == a.kinds.get("node_fail", 0)
        assert "faults" in a.render()
        json.dumps(a.to_dict())

    def test_capacity_override_for_headerless_stream(self):
        wl = _workload(n=40, seed=2)
        events = [
            e for e in _fast_stream(wl, CAPACITY, "fcfs", EASY)
            if e["kind"] != "run_start"
        ]
        assert run_start_capacity(events) is None
        assert run_start_capacity(events, 32) == 32
        a = analyze_events(events, capacity=CAPACITY)
        assert a.capacity == CAPACITY
        assert a.utilization["max_used"] <= CAPACITY

    def test_load_events_dispatch(self, tmp_path):
        wl = _workload(n=40, seed=2)
        rec = ColumnarRecorder()
        simulate_fast(wl, CAPACITY, "fcfs", EASY, tracer=rec)
        npz, jsonl = tmp_path / "t.npz", tmp_path / "t.jsonl"
        rec.save(npz)
        rec.to_jsonl(jsonl)
        assert load_events(npz) == load_events(jsonl) == rec.to_events()


# ----------------------------------------------------------------------
# CLI wiring


@pytest.fixture(scope="module")
def swf_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("columnar_cli") / "trace.swf"
    assert main(["generate", "theta", "-o", str(path), "--days", "1"]) == 0
    return path


class TestCli:
    def test_fast_trace_out_npz_then_analyze(self, swf_path, tmp_path, capsys):
        npz = tmp_path / "events.npz"
        assert (
            main(
                [
                    "simulate", str(swf_path),
                    "--engine", "fast",
                    "--trace-out", str(npz),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert check_events(load_events(npz)) == []
        assert main(["analyze", str(npz)]) == 0
        out = capsys.readouterr().out
        assert "job lifecycle" in out
        assert "start classes" in out

    def test_analyze_json_output(self, swf_path, tmp_path, capsys):
        jsonl = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "simulate", str(swf_path),
                    "--engine", "fast",
                    "--trace-out", str(jsonl),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["analyze", str(jsonl), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "fast"
        assert payload["n_jobs"] > 0
        assert payload["kinds"]["submit"] == payload["n_jobs"]

    def test_analyze_flag_conflicts_exit_2(self, swf_path, tmp_path, capsys):
        jsonl = tmp_path / "e.jsonl"
        assert (
            main(
                ["simulate", str(swf_path), "--trace-out", str(jsonl)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["analyze", str(jsonl), "--report", "x"]) == 2
        assert "report" in capsys.readouterr().err
        assert main(["analyze", str(swf_path), "--json"]) == 2
        assert "json" in capsys.readouterr().err


# ----------------------------------------------------------------------
# byte-exact golden


def _should_update() -> bool:
    return os.environ.get("REPRO_UPDATE_GOLDENS", "") not in ("", "0")


@pytest.mark.timeout_s(120)
def test_columnar_stream_golden(tmp_path):
    """The fast engine's decoded stream for one seeded workload, frozen
    byte for byte — any change to emission order, fields, or float values
    anywhere in the recording pipeline surfaces here."""
    wl = _workload(n=200, seed=123)
    rec = ColumnarRecorder()
    simulate_fast(wl, CAPACITY, "sjf", EASY, tracer=rec)
    out = tmp_path / "stream.jsonl"
    rec.to_jsonl(out)
    got = out.read_text()
    path = GOLDEN_DIR / "columnar_stream.jsonl"
    if _should_update():
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(got)
        pytest.skip(f"regenerated {path}")
    if not path.exists():
        pytest.fail(
            f"golden file {path} missing; generate with "
            "REPRO_UPDATE_GOLDENS=1 (see docs/TESTING.md)"
        )
    assert got == path.read_text(), (
        "columnar stream drifted from the golden; if intended, regenerate "
        "with REPRO_UPDATE_GOLDENS=1 and commit the diff"
    )
    # and the golden itself must match the reference engine's live stream
    ref = _reference_stream(wl, CAPACITY, "sjf", EASY)
    assert [json.loads(line) for line in got.splitlines()][1:] == ref[1:]
