"""Tests for workload similarity, the advisor, and result-to-trace export."""

import numpy as np
import pytest

from repro.core import (
    advise,
    nearest_system,
    signature_distance,
    wait_summary,
    workload_signature,
)
from repro.sched import result_to_trace, simulate, workload_from_trace
from repro.traces import JobStatus, THETA
from repro.traces.synth import generate_trace


class TestSignature:
    @pytest.fixture(scope="class")
    def theta(self):
        return generate_trace("theta", days=4, seed=2)

    def test_signature_fields(self, theta):
        sig = workload_signature(theta)
        assert sig.system == "Theta"
        assert len(sig.runtime) == theta.num_jobs
        assert sig.status_mix.sum() == pytest.approx(1.0)

    def test_subsampling_caps_size(self, theta):
        sig = workload_signature(theta, max_samples=100)
        assert len(sig.runtime) == 100

    def test_self_distance_zero(self, theta):
        sig = workload_signature(theta)
        assert signature_distance(sig, sig) == pytest.approx(0.0, abs=1e-12)

    def test_distance_symmetric(self, theta):
        a = workload_signature(theta)
        b = workload_signature(generate_trace("philly", days=2, seed=2))
        assert signature_distance(a, b) == pytest.approx(
            signature_distance(b, a)
        )

    def test_different_kinds_far_apart(self, theta):
        a = workload_signature(theta)
        near = workload_signature(generate_trace("theta", days=4, seed=9))
        far = workload_signature(generate_trace("helios", days=0.5, seed=9))
        assert signature_distance(a, near) < signature_distance(a, far)


class TestNearestSystem:
    @pytest.mark.parametrize("system", ["theta", "philly", "helios"])
    def test_classifies_own_kind(self, system):
        probe = generate_trace(system, days=3, seed=11)
        ranking = nearest_system(probe, days=2, seed=5)
        assert ranking[0][0] == system
        assert ranking[0][1] < ranking[1][1]

    def test_ranking_sorted(self):
        probe = generate_trace("mira", days=3, seed=11)
        distances = [d for _, d in nearest_system(probe, days=2, seed=5)]
        assert distances == sorted(distances)


class TestAdvisor:
    def test_philly_trace_triggers_failure_rules(self):
        tr = generate_trace("philly", days=4, seed=3)
        rules = {r.rule for r in advise(tr)}
        assert "failure-waste" in rules
        assert "queue-adaptive-users" in rules

    def test_recommendations_have_evidence(self):
        tr = generate_trace("theta", days=3, seed=3)
        for rec in advise(tr):
            assert rec.evidence
            assert rec.severity in ("info", "advice", "warning")
            assert str(rec).startswith(f"[{rec.severity}]")

    def test_clean_synthetic_workload_fewer_warnings(self):
        # a workload with no failures and no waits triggers fewer rules
        from repro.frame import Frame
        from repro.traces import Trace

        n = 300
        rng = np.random.default_rng(0)
        tr = Trace(
            system=THETA,
            jobs=Frame(
                {
                    "submit_time": np.sort(rng.uniform(0, 86400, n)),
                    "runtime": rng.uniform(3000, 3300, n),
                    "cores": np.full(n, 6400),
                    "wait_time": np.zeros(n),
                    "user_id": rng.integers(0, 5, n),
                }
            ),
        )
        warnings = [r for r in advise(tr) if r.severity == "warning"]
        assert not warnings


class TestResultToTrace:
    def test_roundtrip_waits(self):
        tr = generate_trace("theta", days=2, seed=1)
        workload = workload_from_trace(tr)
        res = simulate(workload, tr.system.schedulable_units)
        sim_trace = result_to_trace(res, tr.system)
        assert sim_trace.num_jobs == workload.n
        assert np.allclose(
            sim_trace["wait_time"], res.start - workload.submit
        )
        # the exported trace flows through analyses
        assert wait_summary(sim_trace).mean_wait >= 0.0

    def test_statuses_carried(self):
        tr = generate_trace("theta", days=1, seed=1)
        workload = workload_from_trace(tr)
        res = simulate(workload, tr.system.schedulable_units)
        statuses = np.full(workload.n, int(JobStatus.KILLED))
        out = result_to_trace(res, tr.system, statuses=statuses)
        assert np.all(out["status"] == int(JobStatus.KILLED))

    def test_status_length_checked(self):
        tr = generate_trace("theta", days=1, seed=1)
        workload = workload_from_trace(tr)
        res = simulate(workload, tr.system.schedulable_units)
        with pytest.raises(ValueError):
            result_to_trace(res, tr.system, statuses=np.zeros(3))
