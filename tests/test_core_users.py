"""Tests for per-user behaviour analyses (Fig 8-11 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.users import (
    config_groups_for_user,
    repetition_summary,
    runtime_vs_queue,
    size_vs_queue,
    top_user_status_profiles,
)
from repro.frame import Frame
from repro.traces import PHILLY, Trace
from repro.traces.synth import generate_trace


class TestConfigGroups:
    def test_identical_jobs_one_group(self):
        g = config_groups_for_user(
            np.array([4, 4, 4]), np.array([100.0, 100.0, 100.0])
        )
        assert len(np.unique(g)) == 1

    def test_different_cores_different_groups(self):
        g = config_groups_for_user(np.array([1, 2]), np.array([100.0, 100.0]))
        assert g[0] != g[1]

    def test_runtime_tolerance_boundary(self):
        # 100 and 109 within 10% of their running mean; 100 and 200 not
        g = config_groups_for_user(np.array([1, 1]), np.array([100.0, 109.0]))
        assert g[0] == g[1]
        g = config_groups_for_user(np.array([1, 1]), np.array([100.0, 200.0]))
        assert g[0] != g[1]

    def test_chain_does_not_drift_unboundedly(self):
        # each step is within 10% of its neighbour but the running-mean rule
        # must eventually split a long drifting chain
        runtimes = np.array([100.0 * 1.08**i for i in range(20)])
        g = config_groups_for_user(np.ones(20, dtype=int), runtimes)
        assert len(np.unique(g)) > 1

    def test_every_job_assigned(self):
        rng = np.random.default_rng(0)
        cores = rng.choice([1, 2, 4], 100)
        rt = rng.lognormal(4, 1, 100)
        g = config_groups_for_user(cores, rt)
        assert np.all(g >= 0)

    @given(
        st.lists(st.floats(1.0, 1e5), min_size=1, max_size=40),
        st.floats(0.01, 0.3),
    )
    @settings(max_examples=30)
    def test_groups_respect_tolerance(self, runtimes, tol):
        rt = np.array(runtimes)
        g = config_groups_for_user(np.ones(len(rt), dtype=int), rt, tol)
        for gid in np.unique(g):
            member = rt[g == gid]
            mean = member.mean()
            # every member is within ~2*tol of the final mean (running-mean
            # greedy grouping guarantees closeness to the evolving centre)
            assert np.all(np.abs(member - mean) <= 2 * tol * mean + 1e-9)


class TestRepetition:
    def test_single_config_user_repeats_fully(self):
        tr = Trace(
            system=PHILLY,
            jobs=Frame(
                {
                    "submit_time": np.arange(50.0),
                    "runtime": np.full(50, 100.0),
                    "cores": np.full(50, 2),
                    "user_id": np.zeros(50, dtype=np.int64),
                }
            ),
        )
        s = repetition_summary(tr, min_jobs=10)
        assert s.top(1) == pytest.approx(1.0)

    def test_curve_monotone_and_bounded(self):
        tr = generate_trace("philly", days=2, seed=1)
        s = repetition_summary(tr)
        assert np.all(np.diff(s.cumulative_share) >= -1e-12)
        assert s.cumulative_share[-1] <= 1.0 + 1e-12
        assert s.top(10) >= s.top(3) >= s.top(1) > 0

    def test_hpc_more_repetitive_than_dl(self):
        hpc = repetition_summary(generate_trace("mira", days=8, seed=3))
        dl = repetition_summary(generate_trace("philly", days=8, seed=3))
        assert hpc.top(3) > dl.top(3)


class TestQueueConditioned:
    def test_mix_rows_sum_to_one(self):
        tr = generate_trace("philly", days=3, seed=2)
        for mix in (size_vs_queue(tr), runtime_vs_queue(tr)):
            for q in range(3):
                row = mix.mix[q]
                if not np.isnan(row).any():
                    assert row.sum() == pytest.approx(1.0)

    def test_kinds(self):
        tr = generate_trace("helios", days=0.5, seed=2)
        assert size_vs_queue(tr).kind == "size"
        assert runtime_vs_queue(tr).kind == "runtime"

    def test_dl_minimal_grows_with_queue(self):
        tr = generate_trace("philly", days=6, seed=0)
        mf = size_vs_queue(tr).minimal_fraction()
        valid = mf[~np.isnan(mf)]
        assert valid[-1] > valid[0]  # the Fig 9 trend

    def test_thresholds_ordered(self):
        tr = generate_trace("theta", days=3, seed=2)
        mix = size_vs_queue(tr)
        t1, t2 = mix.thresholds
        assert 0 <= t1 <= t2


class TestUserStatusProfiles:
    def test_top_users_by_job_count(self):
        tr = generate_trace("philly", days=3, seed=4)
        profiles = top_user_status_profiles(tr, n_users=3)
        assert len(profiles) == 3
        counts = [p.n_jobs for p in profiles]
        assert counts == sorted(counts, reverse=True)

    def test_violin_keys(self):
        tr = generate_trace("theta", days=3, seed=4)
        p = top_user_status_profiles(tr, n_users=1)[0]
        assert set(p.violins) == {"Passed", "Failed", "Killed"}

    def test_separation_non_negative(self):
        tr = generate_trace("helios", days=0.5, seed=4)
        for p in top_user_status_profiles(tr, n_users=3):
            assert p.separation() >= 0.0
