"""Golden-trace regression tests for the experiment pipelines.

Small, fast, seeded runs of the ``table2`` and ``ext_resilience``
experiments are frozen as JSON under ``tests/goldens/``; the tests compare
the freshly computed :meth:`ExperimentResult.to_json` output to the frozen
file **byte for byte**.  Any change — a reordered dict key, a float that
moved in the 15th decimal, a renamed metric — fails loudly, which is the
point: the synthetic-trace generator, both scheduling engines, the fault
injector and the metrics layer all feed these numbers, so an unintended
change anywhere upstream surfaces here.

When a change is *intended*, regenerate with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_goldens.py

and commit the updated files alongside the code change (the diff then
documents exactly which numbers moved).  See ``docs/TESTING.md``.
"""

import os
from pathlib import Path

import pytest

from repro.experiments import ext_resilience, table2

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: deliberately small parameters: ~1s per experiment, yet every layer
#: (synth traces, EASY + relaxed + adaptive engines, fault injection,
#: metrics) is exercised.  Changing these invalidates the goldens.
GOLDEN_PARAMS = {"days": 2.0, "seed": 0, "max_jobs": 600}

CASES = {
    "table2": lambda: table2.run(**GOLDEN_PARAMS),
    "ext_resilience": lambda: ext_resilience.run(**GOLDEN_PARAMS),
}


def _should_update() -> bool:
    return os.environ.get("REPRO_UPDATE_GOLDENS", "") not in ("", "0")


@pytest.mark.parametrize("name", sorted(CASES))
@pytest.mark.timeout_s(120)
def test_golden(name):
    got = CASES[name]().to_json() + "\n"
    path = GOLDEN_DIR / f"{name}.json"
    if _should_update():
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(got)
        pytest.skip(f"regenerated {path}")
    if not path.exists():
        pytest.fail(
            f"golden file {path} missing; generate with "
            "REPRO_UPDATE_GOLDENS=1 (see docs/TESTING.md)"
        )
    want = path.read_text()
    assert got == want, (
        f"{name} output drifted from {path}; if intended, regenerate with "
        "REPRO_UPDATE_GOLDENS=1 and commit the diff"
    )


def test_goldens_regenerate_byte_identically(tmp_path, monkeypatch):
    """The regeneration path itself is deterministic (same bytes twice)."""
    a = CASES["table2"]().to_json()
    b = CASES["table2"]().to_json()
    assert a == b
