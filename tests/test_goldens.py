"""Golden-trace regression tests for the experiment pipelines.

Small, fast, seeded runs of the ``table2`` and ``ext_resilience``
experiments are frozen as JSON under ``tests/goldens/``; the tests compare
the freshly computed :meth:`ExperimentResult.to_json` output to the frozen
file **byte for byte**.  Any change — a reordered dict key, a float that
moved in the 15th decimal, a renamed metric — fails loudly, which is the
point: the synthetic-trace generator, both scheduling engines, the fault
injector and the metrics layer all feed these numbers, so an unintended
change anywhere upstream surfaces here.

When a change is *intended*, regenerate with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_goldens.py

and commit the updated files alongside the code change (the diff then
documents exactly which numbers moved).  See ``docs/TESTING.md``.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments import ext_resilience, table2
from repro.sched import (
    FaultConfig,
    simulate_fast_conservative,
    simulate_fast_with_faults,
    workload_from_trace,
)
from repro.traces.synth import generate_trace

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: deliberately small parameters: ~1s per experiment, yet every layer
#: (synth traces, EASY + relaxed + adaptive engines, fault injection,
#: metrics) is exercised.  Changing these invalidates the goldens.
GOLDEN_PARAMS = {"days": 2.0, "seed": 0, "max_jobs": 600}


class _Blob:
    """Adapter giving ad-hoc golden payloads the ``.to_json()`` shape."""

    def __init__(self, payload: dict):
        self.payload = payload

    def to_json(self) -> str:
        return json.dumps(self.payload, indent=1, sort_keys=True)


def _golden_workload():
    trace = generate_trace("mira", days=2.0, seed=7)
    return workload_from_trace(trace), int(trace.system.schedulable_units)


def _fast_conservative_golden() -> _Blob:
    """Freeze the fast conservative twin's full per-job output.

    The twin is differentially locked to ``simulate_conservative`` (see
    ``tests/test_fast_engine.py``), so this golden transitively freezes
    the reference engine too — including every reservation in
    ``promised`` and the conservative profile's queue-sample cadence.
    """
    workload, capacity = _golden_workload()
    res = simulate_fast_conservative(
        workload, capacity, "sjf", track_queue=True
    )
    return _Blob(
        {
            "engine": "fast-conservative",
            "policy": "sjf",
            "summary": res.to_dict(),
            "start": res.start.tolist(),
            "promised": res.promised.tolist(),
            "backfilled": res.backfilled.astype(int).tolist(),
            "queue_samples": res.queue_samples.tolist(),
            "queue_sample_times": res.queue_sample_times.tolist(),
        }
    )


def _fast_faults_golden() -> _Blob:
    """Freeze the fast fault twin's full result: schedule, attempt log,
    node failure/repair processes and queue samples, under a calibrated
    configuration that exercises node kills, intrinsic faults, retries
    and checkpoint restores."""
    workload, capacity = _golden_workload()
    cfg = FaultConfig(
        node_mtbf=40_000.0,
        node_mttr=1_800.0,
        n_nodes=16,
        fail_prob=0.08,
        kill_prob=0.03,
        max_attempts=3,
        checkpoint_interval=3_600.0,
        seed=13,
    )
    res = simulate_fast_with_faults(
        workload, capacity, "fcfs", faults=cfg, track_queue=True
    )
    return _Blob(
        {
            "engine": "fast-faults",
            "policy": "fcfs",
            "summary": res.to_dict(),
            "start": res.start.tolist(),
            "end": res.end.tolist(),
            "status": res.status.tolist(),
            "attempts": res.attempts.tolist(),
            "promised": res.promised.tolist(),
            "backfilled": res.backfilled.astype(int).tolist(),
            "attempt_job": res.attempt_job.tolist(),
            "attempt_start": res.attempt_start.tolist(),
            "attempt_elapsed": res.attempt_elapsed.tolist(),
            "attempt_outcome": res.attempt_outcome.tolist(),
            "node_fail_times": res.node_fail_times.tolist(),
            "node_fail_nodes": res.node_fail_nodes.tolist(),
            "node_repair_times": res.node_repair_times.tolist(),
            "queue_samples": res.queue_samples.tolist(),
            "queue_sample_times": res.queue_sample_times.tolist(),
        }
    )


CASES = {
    "table2": lambda: table2.run(**GOLDEN_PARAMS),
    "ext_resilience": lambda: ext_resilience.run(**GOLDEN_PARAMS),
    "fast_conservative": _fast_conservative_golden,
    "fast_faults": _fast_faults_golden,
}


def _should_update() -> bool:
    return os.environ.get("REPRO_UPDATE_GOLDENS", "") not in ("", "0")


@pytest.mark.parametrize("name", sorted(CASES))
@pytest.mark.timeout_s(120)
def test_golden(name):
    got = CASES[name]().to_json() + "\n"
    path = GOLDEN_DIR / f"{name}.json"
    if _should_update():
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(got)
        pytest.skip(f"regenerated {path}")
    if not path.exists():
        pytest.fail(
            f"golden file {path} missing; generate with "
            "REPRO_UPDATE_GOLDENS=1 (see docs/TESTING.md)"
        )
    want = path.read_text()
    assert got == want, (
        f"{name} output drifted from {path}; if intended, regenerate with "
        "REPRO_UPDATE_GOLDENS=1 and commit the diff"
    )


def test_goldens_regenerate_byte_identically(tmp_path, monkeypatch):
    """The regeneration path itself is deterministic (same bytes twice)."""
    a = CASES["table2"]().to_json()
    b = CASES["table2"]().to_json()
    assert a == b
