"""Property-based tests: Frame relational ops against brute-force oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import Frame, from_csv_string, to_csv_string

small_ints = st.integers(0, 8)
floats = st.floats(-1e6, 1e6, allow_nan=False)


@st.composite
def frames(draw):
    n = draw(st.integers(1, 40))
    return Frame(
        {
            "k": np.array(draw(st.lists(small_ints, min_size=n, max_size=n))),
            "v": np.array(draw(st.lists(floats, min_size=n, max_size=n))),
        }
    )


class TestGroupByOracle:
    @given(frames())
    @settings(max_examples=60, deadline=None)
    def test_sum_matches_bruteforce(self, f):
        out = f.groupby("k").agg(s=("v", "sum"))
        for i in range(out.num_rows):
            k = out["k"][i]
            assert out["s"][i] == pytest.approx(
                float(f["v"][f["k"] == k].sum()), rel=1e-9, abs=1e-6
            )

    @given(frames())
    @settings(max_examples=60, deadline=None)
    def test_group_sizes_partition_rows(self, f):
        gb = f.groupby("k")
        assert gb.sizes().sum() == f.num_rows
        assert gb.num_groups == len(np.unique(f["k"]))

    @given(frames())
    @settings(max_examples=40, deadline=None)
    def test_min_max_envelope(self, f):
        out = f.groupby("k").agg(lo=("v", "min"), hi=("v", "max"))
        assert np.all(out["lo"] <= out["hi"])
        assert out["lo"].min() == f["v"].min()
        assert out["hi"].max() == f["v"].max()


class TestSortFilterOracle:
    @given(frames())
    @settings(max_examples=40, deadline=None)
    def test_sort_is_permutation(self, f):
        s = f.sort_by("v")
        assert sorted(s["v"]) == sorted(f["v"])
        assert np.all(np.diff(s["v"]) >= 0)

    @given(frames(), small_ints)
    @settings(max_examples=40, deadline=None)
    def test_filter_complement(self, f, k):
        hit = f.filter(f["k"] == k)
        miss = f.filter(f["k"] != k)
        assert hit.num_rows + miss.num_rows == f.num_rows
        assert np.all(hit["k"] == k)


class TestJoinOracle:
    @given(frames())
    @settings(max_examples=40, deadline=None)
    def test_inner_join_with_lookup(self, f):
        keys = np.unique(f["k"])
        lookup = Frame({"k": keys, "w": keys * 10.0})
        joined = f.join(lookup, on="k")
        # every row matches (lookup covers all keys) and w is consistent
        assert joined.num_rows == f.num_rows
        assert np.allclose(joined["w"], joined["k"] * 10.0)


class TestCsvRoundtripProperty:
    @given(frames())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, f):
        back = from_csv_string(to_csv_string(f))
        assert back.num_rows == f.num_rows
        assert np.array_equal(back["k"], f["k"])
        assert np.allclose(back["v"], f["v"])


class TestDescribeProperty:
    @given(frames())
    @settings(max_examples=40, deadline=None)
    def test_describe_consistent(self, f):
        d = f.describe()
        row = {d["column"][i]: i for i in range(d.num_rows)}
        i = row["v"]
        assert d["min"][i] <= d["median"][i] <= d["max"][i]
        assert d["count"][i] == f.num_rows
