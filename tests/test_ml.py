"""ML substrate tests: models recover known structure; metrics behave."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    LinearRegression,
    MLPRegressor,
    Ridge,
    StandardScaler,
    TobitRegressor,
    mae,
    mse,
    prediction_accuracy,
    r2_score,
    train_test_split,
    underestimation_rate,
)

RNG = lambda s=0: np.random.default_rng(s)


def linear_data(n=400, d=3, noise=0.1, seed=0):
    rng = RNG(seed)
    X = rng.normal(size=(n, d))
    w = np.array([2.0, -1.0, 0.5])[:d]
    y = X @ w + 3.0 + noise * rng.normal(size=n)
    return X, y, w


class TestLinear:
    def test_recovers_coefficients(self):
        X, y, w = linear_data(noise=0.0)
        m = LinearRegression().fit(X, y)
        assert np.allclose(m.coef_, w, atol=1e-8)
        assert m.intercept_ == pytest.approx(3.0)

    def test_no_intercept(self):
        X, y, _ = linear_data(noise=0.0)
        m = LinearRegression(fit_intercept=False).fit(X, y)
        assert m.intercept_ == 0.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.zeros((2, 2)))

    def test_1d_X_promoted(self):
        m = LinearRegression().fit(np.arange(10.0), 2 * np.arange(10.0))
        assert m.predict(np.array([100.0]))[0] == pytest.approx(200.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.zeros((3, 2)), np.zeros(4))

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.array([[np.nan]]), np.array([1.0]))


class TestRidge:
    def test_alpha_zero_matches_ols(self):
        X, y, _ = linear_data()
        ols = LinearRegression().fit(X, y)
        ridge = Ridge(alpha=0.0).fit(X, y)
        assert np.allclose(ridge.coef_, ols.coef_, atol=1e-8)

    def test_shrinkage_monotone(self):
        X, y, _ = linear_data()
        norms = [
            np.linalg.norm(Ridge(alpha=a).fit(X, y).coef_)
            for a in (0.0, 10.0, 1000.0)
        ]
        assert norms[0] > norms[1] > norms[2]

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            Ridge(alpha=-1.0)


class TestTree:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 200)[:, None]
        y = (X[:, 0] > 0.5).astype(float)
        m = DecisionTreeRegressor(max_depth=2, min_samples_leaf=2).fit(X, y)
        pred = m.predict(np.array([[0.2], [0.8]]))
        assert pred[0] == pytest.approx(0.0, abs=0.05)
        assert pred[1] == pytest.approx(1.0, abs=0.05)

    def test_depth_limit(self):
        X, y, _ = linear_data(n=500)
        m = DecisionTreeRegressor(max_depth=3, min_samples_leaf=1).fit(X, y)
        assert m.depth <= 3

    def test_min_samples_leaf(self):
        X, y, _ = linear_data(n=40)
        m = DecisionTreeRegressor(max_depth=10, min_samples_leaf=20).fit(X, y)
        assert m.n_leaves <= 2

    def test_constant_target_single_leaf(self):
        X = np.arange(20.0)[:, None]
        m = DecisionTreeRegressor().fit(X, np.full(20, 7.0))
        assert m.n_leaves == 1
        assert np.all(m.predict(X) == 7.0)

    def test_beats_linear_on_nonlinear(self):
        rng = RNG(2)
        X = rng.uniform(-2, 2, size=(600, 1))
        y = np.sin(3 * X[:, 0]) + 0.05 * rng.normal(size=600)
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        lin = LinearRegression().fit(X, y)
        assert mse(y, tree.predict(X)) < mse(y, lin.predict(X)) / 2

    def test_param_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)


class TestBoosting:
    def test_improves_with_stages(self):
        rng = RNG(3)
        X = rng.uniform(-2, 2, size=(500, 2))
        y = X[:, 0] ** 2 + np.sin(2 * X[:, 1])
        weak = GradientBoostingRegressor(n_estimators=3).fit(X, y)
        strong = GradientBoostingRegressor(n_estimators=80).fit(X, y)
        assert mse(y, strong.predict(X)) < mse(y, weak.predict(X)) / 3

    def test_early_stopping_reduces_stages(self):
        X, y, _ = linear_data(n=300, noise=2.0)
        m = GradientBoostingRegressor(
            n_estimators=300,
            early_stopping_fraction=0.25,
            early_stopping_rounds=5,
        ).fit(X, y)
        assert m.n_stages < 300

    def test_subsample_still_learns(self):
        X, y, _ = linear_data(n=500)
        m = GradientBoostingRegressor(n_estimators=60, subsample=0.5).fit(X, y)
        assert r2_score(y, m.predict(X)) > 0.8

    def test_param_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)


class TestMLP:
    def test_learns_linear_function(self):
        X, y, _ = linear_data(n=600, noise=0.05)
        m = MLPRegressor(hidden=(32,), epochs=80, random_state=1).fit(X, y)
        assert r2_score(y, m.predict(X)) > 0.95

    def test_learns_nonlinear_function(self):
        rng = RNG(4)
        X = rng.uniform(-1, 1, size=(800, 1))
        y = np.sin(4 * X[:, 0])
        m = MLPRegressor(hidden=(64, 32), epochs=150, random_state=1).fit(X, y)
        assert r2_score(y, m.predict(X)) > 0.8

    def test_deterministic_given_seed(self):
        X, y, _ = linear_data(n=200)
        a = MLPRegressor(epochs=5, random_state=9).fit(X, y).predict(X)
        b = MLPRegressor(epochs=5, random_state=9).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_needs_hidden_layer(self):
        with pytest.raises(ValueError):
            MLPRegressor(hidden=())


class TestTobit:
    def test_uncensored_matches_ols(self):
        X, y, w = linear_data(noise=0.2)
        tob = TobitRegressor().fit(X, y)
        assert np.allclose(tob.coef_, w, atol=0.1)

    def test_censoring_corrects_bias(self):
        # right-censor at the mean: naive OLS is biased low, Tobit is not
        rng = RNG(5)
        X = rng.normal(size=(800, 1))
        y_true = 2.0 * X[:, 0] + 5.0 + 0.5 * rng.normal(size=800)
        cap = 5.0
        censored = y_true > cap
        y_obs = np.minimum(y_true, cap)
        ols = LinearRegression().fit(X, y_obs)
        tob = TobitRegressor().fit(X, y_obs, censored=censored)
        assert abs(tob.coef_[0] - 2.0) < abs(ols.coef_[0] - 2.0)
        assert tob.coef_[0] == pytest.approx(2.0, abs=0.2)

    def test_quantile_prediction_above_mean(self):
        X, y, _ = linear_data(noise=0.3)
        tob = TobitRegressor().fit(X, y)
        assert np.all(tob.predict_quantile(X, 0.9) > tob.predict(X))

    def test_quantile_validation(self):
        X, y, _ = linear_data(n=50)
        tob = TobitRegressor().fit(X, y)
        with pytest.raises(ValueError):
            tob.predict_quantile(X, 1.5)

    def test_censored_mask_length_checked(self):
        X, y, _ = linear_data(n=50)
        with pytest.raises(ValueError):
            TobitRegressor().fit(X, y, censored=np.zeros(3, dtype=bool))


class TestTrainingTelemetry:
    """callback=/TrainingLog hooks observe fits without changing them."""

    @staticmethod
    def _censored_problem(n=400, seed=5):
        rng = RNG(seed)
        X = rng.normal(size=(n, 2))
        y_true = 2.0 * X[:, 0] - X[:, 1] + 5.0 + 0.5 * rng.normal(size=n)
        cap = 5.5
        return X, np.minimum(y_true, cap), y_true > cap

    def _check(self, make, fit):
        """Fit with and without a TrainingLog; history must be non-empty and
        monotone-indexed, predictions bit-identical."""
        from repro.obs import TrainingLog

        log = TrainingLog()
        with_log = fit(make(log))
        without = fit(make(None))
        assert len(log) > 0
        assert log.indices == sorted(set(log.indices))
        assert all(np.isfinite(v) for v in log.losses)
        X_probe = RNG(1).normal(size=(50, with_log_dim(with_log)))
        assert np.array_equal(with_log.predict(X_probe), without.predict(X_probe))
        return log

    def test_mlp_per_epoch_loss(self):
        X, y, _ = linear_data(n=300)
        log = self._check(
            lambda cb: MLPRegressor(epochs=12, random_state=2, callback=cb),
            lambda m: m.fit(X, y),
        )
        assert log.indices == list(range(12))
        # on an easy linear problem the loss curve must trend downward
        assert log.losses[-1] < log.losses[0]

    def test_gbm_per_stage_loss(self):
        X, y, _ = linear_data(n=300)
        log = self._check(
            lambda cb: GradientBoostingRegressor(n_estimators=15, callback=cb),
            lambda m: m.fit(X, y),
        )
        assert log.indices == list(range(15))
        assert log.losses[-1] < log.losses[0]
        assert "val_mse" not in log.records[0]

    def test_gbm_early_stopping_reports_val_mse(self):
        from repro.obs import TrainingLog

        X, y, _ = linear_data(n=300, noise=2.0)
        log = TrainingLog()
        m = GradientBoostingRegressor(
            n_estimators=200,
            early_stopping_fraction=0.25,
            early_stopping_rounds=5,
            callback=log,
        ).fit(X, y)
        assert len(log) == m.n_stages
        assert all("val_mse" in r for r in log.records)

    def test_quantile_gbm_per_stage_pinball(self):
        from repro.ml.quantile import QuantileGradientBoosting

        X, y, _ = linear_data(n=300)
        log = self._check(
            lambda cb: QuantileGradientBoosting(n_estimators=10, callback=cb),
            lambda m: m.fit(X, y),
        )
        assert log.indices == list(range(10))
        assert log.losses[-1] < log.losses[0]

    def test_tobit_lbfgs_iteration_trace(self):
        X, y, censored = self._censored_problem()
        log = self._check(
            lambda cb: TobitRegressor(callback=cb),
            lambda m: m.fit(X, y, censored=censored),
        )
        # the trace is the optimizer's own path: negative log-likelihood
        # at each L-BFGS iterate, improving over the warm start
        assert log.losses[-1] <= log.losses[0]

    def test_tobit_coefficients_unchanged_by_callback(self):
        from repro.obs import TrainingLog

        X, y, censored = self._censored_problem()
        a = TobitRegressor(callback=TrainingLog()).fit(X, y, censored=censored)
        b = TobitRegressor().fit(X, y, censored=censored)
        assert np.array_equal(a.coef_, b.coef_)
        assert a.intercept_ == b.intercept_
        assert a.sigma_ == b.sigma_

    def test_training_log_to_dict(self):
        from repro.obs import TrainingLog

        log = TrainingLog()
        log(0, 1.5, val_mse=2.0)
        assert log.to_dict() == {
            "n": 1,
            "records": [{"index": 0, "loss": 1.5, "val_mse": 2.0}],
        }


def with_log_dim(model) -> int:
    """Feature count a fitted model expects (for building probe inputs)."""
    if isinstance(model, MLPRegressor):
        return len(model._x_scaler.mean_)
    if isinstance(model, TobitRegressor):
        return len(model.coef_)
    return 3  # tree ensembles fitted on linear_data's d=3


class TestMLPValidation:
    def test_epochs_zero_raises(self):
        X, y, _ = linear_data(n=50)
        with pytest.raises(ValueError, match="epochs=0"):
            MLPRegressor(epochs=0).fit(X, y)

    def test_batch_size_zero_raises(self):
        X, y, _ = linear_data(n=50)
        with pytest.raises(ValueError, match="batch_size=0"):
            MLPRegressor(batch_size=0).fit(X, y)

    def test_empty_training_set_raises(self):
        with pytest.raises(ValueError, match="empty"):
            MLPRegressor().fit(np.zeros((0, 3)), np.zeros(0))


class TestPreprocess:
    def test_scaler_zero_mean_unit_var(self):
        X = RNG().normal(5.0, 3.0, size=(500, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_scaler_roundtrip(self):
        X = RNG().normal(size=(100, 3))
        sc = StandardScaler().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X)

    def test_scaler_constant_column(self):
        X = np.ones((10, 1))
        Z = StandardScaler().fit_transform(X)
        assert np.all(Z == 0.0)

    def test_scaler_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((1, 1)))

    def test_split_sizes(self):
        a = np.arange(100)
        tr, te = train_test_split(a, test_fraction=0.2, rng=RNG())
        assert len(tr) == 80 and len(te) == 20
        assert sorted(np.concatenate([tr, te])) == list(range(100))

    def test_split_chronological(self):
        a = np.arange(10)
        tr, te = train_test_split(a, test_fraction=0.3, shuffle=False)
        assert list(tr) == list(range(7))
        assert list(te) == [7, 8, 9]

    def test_split_multiple_arrays_aligned(self):
        a = np.arange(50)
        b = a * 2
        a_tr, a_te, b_tr, b_te = train_test_split(a, b, rng=RNG())
        assert np.all(b_tr == 2 * a_tr) and np.all(b_te == 2 * a_te)

    def test_split_validation(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(5), np.arange(6))
        with pytest.raises(ValueError):
            train_test_split(np.arange(5), test_fraction=1.5)


class TestMetrics:
    def test_mse_mae(self):
        y = np.array([1.0, 2.0])
        p = np.array([2.0, 0.0])
        assert mse(y, p) == pytest.approx(2.5)
        assert mae(y, p) == pytest.approx(1.5)

    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0
        assert r2_score(y, np.full(3, 2.0)) == 0.0

    def test_prediction_accuracy_symmetric(self):
        y = np.array([100.0])
        assert prediction_accuracy(y, np.array([50.0]))[0] == 0.5
        assert prediction_accuracy(y, np.array([200.0]))[0] == 0.5

    def test_prediction_accuracy_perfect(self):
        y = np.array([42.0])
        assert prediction_accuracy(y, y)[0] == 1.0

    def test_prediction_accuracy_nonpositive_pred(self):
        assert prediction_accuracy(np.array([10.0]), np.array([-5.0]))[0] == 0.0

    def test_underestimation_rate(self):
        y = np.array([10.0, 10.0, 10.0, 10.0])
        p = np.array([5.0, 15.0, 10.0, 9.0])
        assert underestimation_rate(y, p) == 0.5

    @given(
        st.lists(st.floats(1.0, 1e6), min_size=1, max_size=50),
        st.floats(0.5, 2.0),
    )
    @settings(max_examples=30)
    def test_accuracy_bounded(self, values, factor):
        y = np.array(values)
        acc = prediction_accuracy(y, y * factor)
        assert np.all((acc >= 0) & (acc <= 1.0 + 1e-12))
