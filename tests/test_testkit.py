"""Tests of the differential-oracle test kit itself.

Covers the four pillars of :mod:`repro.testkit` (see ``docs/TESTING.md``):

* **oracle parity** — the O(n²) reference scheduler matches the optimized
  engines bit for bit on seeded random workloads;
* **invariant library** — each checker flags hand-built violations and
  stays silent on clean schedules;
* **fuzzer + shrinker** — the acceptance campaign (200 workloads per
  policy configuration, zero findings), mutation detection (a deliberately
  broken engine is caught and shrunk to a tiny reproducer), and shrinker
  unit behavior;
* **edge-case regressions** — zero-runtime jobs, full-cluster jobs and
  same-instant submissions, plus the SWF reproducer round trip.
"""

import numpy as np
import pytest

from repro.sched import (
    EASY,
    NO_BACKFILL,
    SimWorkload,
    compute_metrics,
    simulate,
    simulate_conservative,
)
from repro.sched.cluster import Cluster
from repro.sched.engine import SimResult
from repro.sched.job import workload_from_trace
from repro.testkit import (
    FUZZ_POLICIES,
    check_capacity,
    check_case,
    check_conservation,
    check_no_early_start,
    check_promises,
    check_result,
    fuzz,
    max_concurrent_usage,
    oracle_simulate,
    random_workload,
    shrink,
    workload_to_trace,
)
from repro.traces.swf import read_swf, write_swf

CAPACITY = 16


def _workload(submit, cores, runtime, walltime=None):
    submit = np.asarray(submit, dtype=float)
    runtime = np.asarray(runtime, dtype=float)
    return SimWorkload(
        submit=submit,
        cores=np.asarray(cores, dtype=np.int64),
        runtime=runtime,
        walltime=runtime if walltime is None else np.asarray(walltime, float),
        user=np.zeros(len(submit), dtype=np.int64),
    )


# ----------------------------------------------------------------------
# oracle parity


class TestOracleParity:
    """Seeded spot checks; the fuzz campaign below is the bulk guard."""

    def test_matches_engines_on_seeded_workloads(self):
        for case in range(40):
            rng = np.random.default_rng((123, case))
            wl = random_workload(rng, capacity=CAPACITY)
            for policy in FUZZ_POLICIES.values():
                engine = policy.run_engine(wl, CAPACITY)
                oracle = policy.run_oracle(wl, CAPACITY)
                assert np.array_equal(engine.start, oracle.start), policy.name
                assert np.array_equal(
                    engine.promised, oracle.promised, equal_nan=True
                ), policy.name

    def test_oracle_is_a_real_scheduler(self):
        """Oracle output independently passes the invariant battery."""
        rng = np.random.default_rng(7)
        wl = random_workload(rng, capacity=CAPACITY)
        for engine, bf in (("easy", EASY), ("easy", NO_BACKFILL), ("conservative", EASY)):
            res = oracle_simulate(wl, CAPACITY, "fcfs", bf, engine=engine)
            assert check_result(res) == []

    def test_backfill_actually_happens(self):
        # head (16 cores) blocked behind a long 8-core job; the 1-core
        # short job must jump the queue under EASY but not without backfill
        wl = _workload(
            submit=[0.0, 1.0, 2.0],
            cores=[8, 16, 1],
            runtime=[100.0, 10.0, 5.0],
        )
        easy = oracle_simulate(wl, CAPACITY, "fcfs", EASY)
        none = oracle_simulate(wl, CAPACITY, "fcfs", NO_BACKFILL)
        assert easy.backfilled[2]
        assert easy.start[2] == 2.0
        assert none.start[2] > none.start[1]
        assert np.array_equal(
            simulate(wl, CAPACITY, "fcfs", EASY).start, easy.start
        )


# ----------------------------------------------------------------------
# invariant library


class TestInvariantLibrary:
    def test_max_concurrent_usage_counts_overlap(self):
        peak = max_concurrent_usage(
            np.array([0.0, 5.0, 20.0]),
            np.array([10.0, 10.0, 5.0]),
            np.array([4, 8, 2]),
        )
        assert peak == 12

    def test_back_to_back_jobs_do_not_double_count(self):
        # half-open intervals: release at t is processed before the
        # allocation at t, so a full-cluster handoff peaks at capacity
        peak = max_concurrent_usage(
            np.array([0.0, 10.0]),
            np.array([10.0, 10.0]),
            np.array([16, 16]),
        )
        assert peak == 16

    def test_zero_runtime_jobs_occupy_nothing(self):
        peak = max_concurrent_usage(
            np.array([0.0, 0.0]),
            np.array([0.0, 0.0]),
            np.array([16, 16]),
        )
        assert peak <= 16

    def test_check_capacity_flags_overcommit(self):
        wl = _workload([0.0, 0.0], [16, 16], [10.0, 10.0])
        bad = SimResult(
            workload=wl,
            capacity=CAPACITY,
            start=np.array([0.0, 0.0]),  # both at once: 32 > 16
            promised=np.full(2, np.nan),
        )
        assert check_capacity(bad)

    def test_check_no_early_start_flags_time_travel(self):
        wl = _workload([10.0, 20.0], [1, 1], [5.0, 5.0])
        bad = SimResult(
            workload=wl,
            capacity=CAPACITY,
            start=np.array([5.0, 20.0]),
            promised=np.full(2, np.nan),
        )
        assert len(check_no_early_start(bad)) == 1

    def test_check_promises_flags_broken_reservation(self):
        wl = _workload([0.0, 0.0], [1, 1], [5.0, 5.0])
        bad = SimResult(
            workload=wl,
            capacity=CAPACITY,
            start=np.array([0.0, 30.0]),
            promised=np.array([np.nan, 10.0]),
        )
        assert len(check_promises(bad)) == 1
        assert check_promises(bad, slack=25.0) == []

    def test_check_conservation_flags_impossible_makespan(self):
        wl = _workload([0.0, 0.0], [16, 16], [10.0, 10.0])
        bad = SimResult(
            workload=wl,
            capacity=CAPACITY,
            start=np.array([0.0, 0.0]),
            promised=np.full(2, np.nan),
        )
        # makespan 10 < work bound 20 --> conservation must complain
        assert any("makespan" in v for v in check_conservation(bad))

    def test_clean_schedule_is_clean(self):
        wl = _workload([0.0, 5.0, 9.0], [4, 8, 16], [10.0, 3.0, 7.0])
        res = simulate(wl, CAPACITY, "fcfs", EASY)
        assert check_result(res, firm_promises=True) == []


# ----------------------------------------------------------------------
# fuzz campaign (the ISSUE's acceptance bar)


class TestFuzzCampaign:
    @pytest.mark.timeout_s(600)
    def test_acceptance_200_workloads_per_policy(self):
        """200 fuzzed workloads x (fcfs, sjf, easy, conservative): clean."""
        report = fuzz(budget=200, seed=0)
        assert report.ok, report.describe()
        assert report.cases == 200
        assert report.runs == 200 * 4
        assert "ok" in report.describe()

    def test_sjf_easy_configuration_also_clean(self):
        report = fuzz(policies=("sjf-easy",), budget=60, seed=1)
        assert report.ok, report.describe()

    def test_campaign_is_deterministic(self):
        a = fuzz(budget=20, seed=42)
        b = fuzz(budget=20, seed=42)
        assert a.ok and b.ok
        assert a.cases == b.cases and a.runs == b.runs

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            fuzz(policies=("nonexistent",), budget=5)

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            fuzz(budget=0)


class TestMutationDetection:
    """A deliberately broken engine must be caught AND shrunk small."""

    def test_backfill_overcredit_caught_and_shrunk(self, monkeypatch):
        # classic backfill reservation off-by-one: credit one phantom
        # core at the shadow time, so EASY admits backfills that delay
        # the promised head
        real = Cluster.reservation

        def buggy(self, cores, now):
            shadow, extra = real(self, cores, now)
            return shadow, extra + 1

        monkeypatch.setattr(Cluster, "reservation", buggy)
        report = fuzz(policies=("easy",), budget=200, seed=0)
        assert not report.ok
        div = report.divergence
        assert div.policy == "easy"
        assert div.findings  # non-empty description of the divergence
        # the reproducer stays failing and is tiny
        assert div.workload.n <= 5
        assert check_case(div.workload, report.capacity, FUZZ_POLICIES["easy"])

    def test_priority_inversion_caught(self, monkeypatch):
        # sort ties the wrong way: breaks the documented (score, submit,
        # index) tie-break; the differential must notice
        from repro.sched import policies as pol

        def inverted(self, submit, cores, walltime, now, **context):
            scores = self.score(submit, cores, walltime, now)
            return np.lexsort((-np.arange(len(submit)), scores))

        monkeypatch.setattr(pol.Policy, "order", inverted)
        report = fuzz(policies=("fcfs", "easy"), budget=200, seed=0)
        assert not report.ok
        assert report.divergence.workload.n <= 5


class TestShrinker:
    def test_shrinks_to_single_trigger_job(self):
        rng = np.random.default_rng(3)
        wl = random_workload(rng, capacity=CAPACITY, max_jobs=12)
        # make sure at least one full-cluster job exists
        wl.cores[0] = CAPACITY

        def fails(w):
            return bool(np.any(w.cores == CAPACITY))

        shrunk, evals = shrink(wl, fails)
        assert fails(shrunk)
        assert shrunk.n == 1
        assert shrunk.cores[0] == CAPACITY
        # value minimization drove every other field to its floor
        assert shrunk.runtime[0] == 0.0
        assert shrunk.walltime[0] == 0.0
        assert shrunk.submit[0] == 0.0
        assert evals > 0

    def test_respects_eval_budget(self):
        rng = np.random.default_rng(4)
        wl = random_workload(rng, capacity=CAPACITY, max_jobs=12)

        def fails(w):
            return True

        shrunk, evals = shrink(wl, fails, max_evals=10)
        assert evals <= 10 + 4  # one simplification pass may finish its job
        assert fails(shrunk)

    def test_crashing_candidate_counts_as_failure(self):
        wl = _workload([0.0, 0.0], [1, 2], [5.0, 5.0])

        def fails(w):
            if w.n < 2:
                raise RuntimeError("engine crashed")
            return False

        shrunk, _ = shrink(wl, fails)
        # the crash was treated as "still failing", so removal proceeded
        assert shrunk.n == 1


# ----------------------------------------------------------------------
# edge-case regressions (ISSUE satellite)


class TestEdgeCases:
    def test_zero_runtime_jobs_start_at_submit(self):
        wl = _workload([0.0, 3.0, 3.0], [16, 16, 16], [0.0, 0.0, 0.0])
        for run in (
            simulate(wl, CAPACITY, "fcfs", EASY),
            simulate_conservative(wl, CAPACITY),
            oracle_simulate(wl, CAPACITY, "fcfs", EASY),
        ):
            # zero-runtime jobs occupy nothing: no queueing at all
            assert np.array_equal(run.start, wl.submit)
            assert check_result(run) == []

    def test_all_zero_runtime_metrics_do_not_divide_by_zero(self):
        # regression: utilization of a zero-second makespan is 0, not 0/0
        wl = _workload([0.0, 0.0], [4, 4], [0.0, 0.0])
        m = compute_metrics(simulate(wl, CAPACITY, "fcfs", EASY))
        assert m.util == 0.0
        assert m.wait == 0.0

    def test_full_cluster_job_serializes_the_queue(self):
        wl = _workload(
            submit=[0.0, 0.0, 0.0],
            cores=[CAPACITY, CAPACITY, CAPACITY],
            runtime=[10.0, 10.0, 10.0],
        )
        for run in (
            simulate(wl, CAPACITY, "fcfs", EASY),
            simulate_conservative(wl, CAPACITY),
        ):
            # identical submit + identical score: documented tie-break is
            # ascending job index (see Policy.order)
            assert np.array_equal(run.start, np.array([0.0, 10.0, 20.0]))

    def test_same_instant_ties_follow_job_index(self):
        # equal submit, equal walltime: SJF scores tie too — the ordering
        # must still be deterministic and index-ascending
        wl = _workload(
            submit=[5.0] * 4,
            cores=[CAPACITY] * 4,
            runtime=[7.0] * 4,
        )
        for policy in ("fcfs", "sjf"):
            res = simulate(wl, CAPACITY, policy, EASY)
            assert np.array_equal(
                np.argsort(res.start, kind="stable"), np.arange(4)
            )

    def test_walltime_equals_runtime_keeps_conservative_firm(self):
        rng = np.random.default_rng(11)
        wl = random_workload(rng, capacity=CAPACITY)
        exact = SimWorkload(
            submit=wl.submit,
            cores=wl.cores,
            runtime=wl.runtime,
            walltime=wl.runtime,
            user=wl.user,
        )
        res = simulate_conservative(exact, CAPACITY)
        assert check_result(res, firm_promises=True) == []


# ----------------------------------------------------------------------
# SWF reproducer round trip


class TestReproducerRoundTrip:
    def test_swf_round_trip_preserves_schedule(self, tmp_path):
        rng = np.random.default_rng(5)
        wl = random_workload(rng, capacity=CAPACITY)
        path = tmp_path / "repro.swf"
        write_swf(workload_to_trace(wl, CAPACITY), path)
        back = workload_from_trace(read_swf(path))

        assert np.array_equal(back.submit, wl.submit)
        assert np.array_equal(back.cores, wl.cores)
        assert np.array_equal(back.runtime, wl.runtime)
        # SWF stores walltime 0 as "missing"; the read-back fallback is
        # equivalent under the walltime >= runtime clamp, so the schedule
        # itself must be identical even where the field is not
        for policy in FUZZ_POLICIES.values():
            a = policy.run_engine(wl, CAPACITY)
            b = policy.run_engine(back, CAPACITY)
            assert np.array_equal(a.start, b.start), policy.name

    def test_trace_capacity_matches_fuzz_cluster(self):
        rng = np.random.default_rng(6)
        wl = random_workload(rng, capacity=CAPACITY)
        trace = workload_to_trace(wl, CAPACITY)
        assert trace.system.schedulable_units == CAPACITY
        assert trace.num_jobs == wl.n
