"""Tests for the extension experiments (beyond-paper artifacts)."""

import numpy as np
import pytest

from repro.experiments import run_experiment

DAYS = 5.0
SEED = 0


class TestPredictiveExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "ext_predictive", days=DAYS, seed=SEED, max_jobs=1200, model="lr"
        )

    def test_three_sources(self, result):
        assert set(result.data) == {"user", "predicted", "oracle"}

    def test_oracle_and_user_never_kill(self, result):
        assert result.data["oracle"]["killed"] == 0.0
        assert result.data["user"]["killed"] == 0.0

    def test_render(self, result):
        assert "walltime source" in result.render()


class TestIsolationExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext_isolation", days=DAYS, seed=SEED, max_jobs=2500)

    def test_isolation_never_beats_pooled(self, result):
        assert result.data["wait_partitioned"] >= result.data["wait_pooled"] - 1e-9

    def test_render_mentions_vcs(self, result):
        assert "VC" in result.render()


class TestHybridExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "ext_hybrid",
            days=DAYS,
            seed=SEED,
            fractions=(0.0, 0.5),
            max_jobs=1500,
        )

    def test_all_fractions_present(self, result):
        assert set(result.data) == {"0.0", "0.5"}

    def test_metrics_sane(self, result):
        for cells in result.data.values():
            assert 0.0 < cells["util"] <= 1.0
            assert cells["wait"] >= 0.0


class TestTradeoffExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "ext_tradeoff",
            days=DAYS,
            seed=SEED,
            quantiles=(0.5, 0.9),
            max_jobs=2500,
        )

    def test_higher_quantile_fewer_underestimates(self, result):
        for arm in ("baseline", "elapsed"):
            assert (
                result.data["0.9"][arm]["under"]
                <= result.data["0.5"][arm]["under"] + 1e-9
            )

    def test_elapsed_dominates_at_median(self, result):
        assert (
            result.data["0.5"]["elapsed"]["under"]
            <= result.data["0.5"]["baseline"]["under"] + 0.05
        )


class TestRobustness:
    def test_structure(self):
        result = run_experiment("robustness", days=2.0, seed=0, n_seeds=2)
        assert set(result.data) >= {f"T{k}" for k in range(1, 9)}
        rates = [result.data[f"T{k}"] for k in range(1, 9)]
        assert all(0.0 <= r <= 1.0 for r in rates)
        assert np.asarray(result.data["per_seed"]).shape == (2, 8)


class TestResilienceExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "ext_resilience", days=DAYS, seed=SEED, max_jobs=600
        )

    def test_grid_complete(self, result):
        assert set(result.data) == {"none", "weekly", "daily"}
        for level in result.data.values():
            assert set(level) == {"drop", "retry", "retry+ckpt"}
            for cells in level.values():
                assert set(cells) == {"easy", "relaxed", "adaptive"}

    def test_intrinsic_faults_active_even_without_node_failures(self, result):
        # "none" disables the node MTBF process only; the intrinsic
        # FAILED/KILLED mix calibrated from the trace still applies
        for cells in result.data["none"]["drop"].values():
            assert cells["mean_attempts"] == 1.0  # drop = no retries
            assert cells["completed_fraction"] < 1.0
            assert cells["wasted_core_hours"] > 0.0

    def test_failures_cost_goodput(self, result):
        for rname in ("drop", "retry", "retry+ckpt"):
            for bname in ("easy", "relaxed", "adaptive"):
                clean = result.data["none"][rname][bname]
                harsh = result.data["daily"][rname][bname]
                assert harsh["goodput_core_hours"] <= clean["goodput_core_hours"]
                assert harsh["wasted_core_hours"] > 0.0

    def test_retry_recovers_jobs(self, result):
        for bname in ("easy", "relaxed", "adaptive"):
            drop = result.data["daily"]["drop"][bname]
            retry = result.data["daily"]["retry"][bname]
            assert retry["completed_fraction"] >= drop["completed_fraction"]
            assert retry["mean_attempts"] >= drop["mean_attempts"]

    def test_render_reports_goodput(self, result):
        text = result.render()
        assert "goodput (core-h)" in text
        assert "retry+ckpt" in text


class TestObservabilityExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "ext_observability", days=DAYS, seed=SEED, max_jobs=800
        )

    def test_audit_is_clean(self, result):
        assert result.data["violations"] == []
        assert result.data["dropped"] == 0

    def test_event_counts_consistent(self, result):
        counts = result.data["event_counts"]
        assert counts["run_start"] == 1 and counts["run_end"] == 1
        # every start is a submitted attempt; retries re-submit
        assert counts["start"] == counts["submit"]
        assert counts["start"] >= result.data["summary"]["n_jobs"]

    def test_profile_covers_hot_paths(self, result):
        spans = result.data["profile"]["spans"]
        assert {"event_drain", "policy_sort"} <= set(spans)
        assert all(s["calls"] > 0 for s in spans.values())

    def test_metrics_counters_match_events(self, result):
        counters = result.data["metrics"]["counters"]
        counts = result.data["event_counts"]
        assert counters["sim_jobs_started_total"] == counts["start"]
        assert result.data["metrics"]["series_samples"] > 0

    def test_render_shows_timeline_and_audit(self, result):
        text = result.render()
        assert "schedule timeline" in text
        assert "0 violation(s)" in text


class TestSaving:
    def test_save_roundtrip(self, tmp_path):
        result = run_experiment("table1")
        txt, js = result.save(tmp_path)
        assert txt.exists() and js.exists()
        import json

        payload = json.loads(js.read_text())
        assert payload["exp_id"] == "table1"
        assert "selected" in payload["data"]

    def test_json_handles_numpy_and_nan(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(exp_id="x", title="t")
        result.data = {
            "arr": np.array([1.0, 2.0]),
            "i": np.int64(3),
            "f": np.float64(4.5),
            "nan": float("nan"),
        }
        import json

        payload = json.loads(result.to_json())
        assert payload["data"]["arr"] == [1.0, 2.0]
        assert payload["data"]["i"] == 3
        assert payload["data"]["nan"] is None


class TestPoliciesExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "ext_policies",
            days=DAYS,
            seed=SEED,
            policies=("fcfs", "sjf"),
            max_jobs=800,
        )

    def test_grid_complete(self, result):
        assert set(result.data) == {"blue_waters", "mira", "theta"}
        for cells in result.data.values():
            assert set(cells) == {"fcfs", "sjf"}

    def test_sjf_beats_fcfs_on_bsld(self, result):
        wins = sum(
            cells["sjf"]["bsld"] <= cells["fcfs"]["bsld"] + 0.2
            for cells in result.data.values()
        )
        assert wins >= 2  # SJF wins on slowdown almost always

    def test_backfill_rate_recorded(self, result):
        for cells in result.data.values():
            for policy_cells in cells.values():
                assert 0.0 <= policy_cells["backfill_rate"] <= 1.0

    def test_parallel_and_cached_runs_identical(self, result, tmp_path):
        # the runner contract surfaced at the experiment level: fanning the
        # grid over workers, then replaying it from a warm cache, must both
        # reproduce the serial fixture's data exactly
        kwargs = dict(
            days=DAYS, seed=SEED, policies=("fcfs", "sjf"), max_jobs=800
        )
        fanned = run_experiment(
            "ext_policies", jobs=2, cache_dir=tmp_path / "cache", **kwargs
        )
        assert fanned.data == result.data
        warm = run_experiment(
            "ext_policies", cache_dir=tmp_path / "cache", **kwargs
        )
        assert warm.data == result.data
