"""Tests for the runtime-prediction use case (features, models, harness)."""

import numpy as np
import pytest

from repro.predict import (
    FEATURE_NAMES,
    MODEL_NAMES,
    augment_with_checkpoints,
    build_dataset,
    make_predictor,
    run_use_case1,
)
from repro.traces.synth import generate_trace


@pytest.fixture(scope="module")
def theta_trace():
    return generate_trace("theta", days=8, seed=5)


@pytest.fixture(scope="module")
def dataset(theta_trace):
    return build_dataset(theta_trace)


class TestFeatures:
    def test_shapes(self, dataset, theta_trace):
        assert dataset.n == theta_trace.num_jobs
        assert dataset.X.shape == (dataset.n, len(FEATURE_NAMES))

    def test_finite(self, dataset):
        assert np.all(np.isfinite(dataset.X))
        assert np.all(np.isfinite(dataset.runtime))

    def test_no_leakage_first_job_per_user(self, dataset):
        # each user's first job must have zero history features
        for u in np.unique(dataset.user)[:10]:
            first = np.flatnonzero(dataset.user == u)[0]
            # log_last_runtime, log_last2_mean, log_user_mean, count
            assert dataset.X[first, 1] == 0.0
            assert dataset.X[first, 2] == 0.0
            assert dataset.X[first, 3] == 0.0

    def test_last2_positive(self, dataset):
        assert np.all(dataset.last2 > 0)

    def test_last2_matches_history(self):
        # hand-built trace: one user, runtimes 100, 200, 400
        from repro.frame import Frame
        from repro.traces import THETA, Trace

        tr = Trace(
            system=THETA,
            jobs=Frame(
                {
                    "submit_time": [0.0, 10.0, 20.0],
                    "runtime": [100.0, 200.0, 400.0],
                    "cores": [64, 64, 64],
                    "user_id": [5, 5, 5],
                }
            ),
        )
        data = build_dataset(tr)
        # 3rd job's last2 = geometric mean of logs of (100, 200)
        expected = np.exp((np.log(100) + np.log(200)) / 2)
        assert data.last2[2] == pytest.approx(expected)
        # 2nd job falls back to the only prior runtime
        assert data.last2[1] == pytest.approx(100.0)

    def test_censored_flags_killed(self, dataset, theta_trace):
        assert dataset.censored.sum() == (theta_trace["status"] == 2).sum()

    def test_with_elapsed_adds_column(self, dataset):
        X = dataset.with_elapsed(120.0)
        assert X.shape[1] == dataset.X.shape[1] + 1
        assert np.allclose(X[:, -1], np.log1p(120.0))

    def test_subset(self, dataset):
        sub = dataset.subset(np.arange(dataset.n) < 10)
        assert sub.n == 10


class TestAugmentation:
    def test_rows_multiply(self, dataset):
        X_aug, data_aug = augment_with_checkpoints(dataset, threshold=600.0)
        assert len(X_aug) == data_aug.n
        assert len(X_aug) > dataset.n  # at least the elapsed-0 copy + survivors

    def test_elapsed_column_consistent(self, dataset):
        X_aug, data_aug = augment_with_checkpoints(dataset, threshold=600.0)
        elapsed = np.expm1(X_aug[:, -1])
        # every augmented row's job survived its elapsed checkpoint
        assert np.all(data_aug.runtime > elapsed - 1e-6)


class TestPredictors:
    def test_all_models_fit_predict(self, dataset):
        train = dataset.subset(np.arange(dataset.n) < dataset.n // 2)
        test = dataset.subset(np.arange(dataset.n) >= dataset.n // 2)
        for name in MODEL_NAMES:
            predictor = make_predictor(name).fit(train, train.X)
            pred = predictor.predict(test, test.X)
            assert pred.shape == (test.n,), name
            assert np.all(pred > 0), name

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            make_predictor("transformer")

    def test_last2_uses_heuristic_column(self, dataset):
        predictor = make_predictor("last2").fit(dataset, dataset.X)
        pred = predictor.predict(dataset, dataset.X)
        assert np.array_equal(pred, dataset.last2)

    def test_last2_floors_at_elapsed(self, dataset):
        predictor = make_predictor("last2").fit(dataset, dataset.X)
        X = dataset.with_elapsed(1e6)
        pred = predictor.predict(dataset, X)
        assert np.all(pred >= 1e6)


class TestHarness:
    def test_full_run_structure(self, theta_trace):
        cmp = run_use_case1(
            theta_trace,
            fractions=(0.25,),
            models=("last2", "lr"),
            max_jobs=1500,
        )
        assert cmp.system == "Theta"
        arms = {(r.model, r.arm) for r in cmp.results}
        assert arms == {
            ("last2", "baseline"),
            ("last2", "elapsed"),
            ("lr", "baseline"),
            ("lr", "elapsed"),
        }

    def test_metrics_in_range(self, theta_trace):
        cmp = run_use_case1(
            theta_trace, fractions=(0.25,), models=("lr",), max_jobs=1500
        )
        for r in cmp.results:
            assert 0.0 <= r.underestimate_rate <= 1.0
            assert 0.0 <= r.avg_accuracy <= 1.0

    def test_elapsed_reduces_underestimation(self, theta_trace):
        # the paper's headline: elapsed-time feature cuts underestimation
        cmp = run_use_case1(
            theta_trace, fractions=(0.5,), models=("lr",), max_jobs=2500
        )
        base = cmp.cell("lr", 0.5, "baseline")
        elap = cmp.cell("lr", 0.5, "elapsed")
        assert elap.underestimate_rate < base.underestimate_rate

    def test_cell_lookup_missing(self, theta_trace):
        cmp = run_use_case1(
            theta_trace, fractions=(0.25,), models=("lr",), max_jobs=1500
        )
        with pytest.raises(KeyError):
            cmp.cell("lr", 0.9, "baseline")

    def test_too_small_trace_rejected(self):
        tr = generate_trace("theta", days=0.5, seed=1, jobs_per_day=60)
        assert tr.num_jobs < 50
        with pytest.raises(ValueError, match="too small"):
            run_use_case1(tr)


class TestExtraPredictors:
    def test_extra_models_fit_predict(self, dataset):
        from repro.predict import EXTRA_MODEL_NAMES

        train = dataset.subset(np.arange(dataset.n) < 800)
        test = dataset.subset(
            (np.arange(dataset.n) >= 800) & (np.arange(dataset.n) < 1000)
        )
        for name in EXTRA_MODEL_NAMES:
            predictor = make_predictor(name).fit(train, train.X)
            pred = predictor.predict(test, test.X)
            assert pred.shape == (test.n,), name
            assert np.all(pred > 0), name

    def test_quantile_model_underestimates_less(self, dataset):
        train = dataset.subset(np.arange(dataset.n) < 1500)
        test = dataset.subset(np.arange(dataset.n) >= 1500)
        mean_model = make_predictor("lr").fit(train, train.X)
        q_model = make_predictor("xgb_q90").fit(train, train.X)
        from repro.ml import underestimation_rate

        under_mean = underestimation_rate(
            test.runtime, mean_model.predict(test, test.X)
        )
        under_q = underestimation_rate(
            test.runtime, q_model.predict(test, test.X)
        )
        assert under_q < under_mean
