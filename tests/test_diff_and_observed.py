"""Tests for the results-diff tool and observed-schedule metrics."""

import json

import numpy as np
import pytest

from repro.experiments import run_experiment
from repro.experiments.diff import diff_results
from repro.sched import compute_metrics, observed_metrics, simulate, workload_from_trace
from repro.traces.synth import generate_trace


class TestObservedMetrics:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace("theta", days=3, seed=1)

    def test_wait_matches_trace(self, trace):
        m = observed_metrics(trace)
        assert m.wait == pytest.approx(float(trace["wait_time"].mean()))
        assert m.n_jobs == trace.num_jobs

    def test_util_bounded(self, trace):
        m = observed_metrics(trace)
        assert 0.0 < m.util <= 1.0

    def test_comparable_to_simulation(self, trace):
        observed = observed_metrics(trace)
        simulated = compute_metrics(
            simulate(workload_from_trace(trace), trace.system.schedulable_units)
        )
        # both describe the same workload: same order of magnitude
        assert simulated.wait < 100 * max(observed.wait, 1.0)
        assert observed.bsld >= 1.0 and simulated.bsld >= 1.0


class TestDiffResults:
    @pytest.fixture(scope="class")
    def dirs(self, tmp_path_factory):
        a = tmp_path_factory.mktemp("before")
        b = tmp_path_factory.mktemp("after")
        result = run_experiment("table1")
        result.save(a)
        result.save(b)
        return a, b

    def test_identical_dirs_clean(self, dirs):
        a, b = dirs
        report = diff_results(a, b)
        assert report.clean
        assert report.compared_values > 0
        assert "identical" in str(report)

    def test_numeric_drift_detected(self, dirs, tmp_path):
        a, _ = dirs
        mutated = tmp_path / "mutated"
        mutated.mkdir()
        payload = json.loads((a / "table1.json").read_text())
        payload["data"]["selected"][0] = "NotMira"
        (mutated / "table1.json").write_text(json.dumps(payload))
        report = diff_results(a, mutated)
        assert not report.clean
        assert any("selected" in d.path for d in report.drifted)

    def test_tolerance_respected(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        a.mkdir(), b.mkdir()
        (a / "x.json").write_text(json.dumps({"data": {"v": 100.0}}))
        (b / "x.json").write_text(json.dumps({"data": {"v": 103.0}}))
        assert diff_results(a, b, rtol=0.05).clean
        assert not diff_results(a, b, rtol=0.01).clean

    def test_missing_and_added(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        a.mkdir(), b.mkdir()
        (a / "x.json").write_text(json.dumps({"data": {}}))
        (b / "y.json").write_text(json.dumps({"data": {}}))
        report = diff_results(a, b)
        assert report.missing == ["x"]
        assert report.added == ["y"]

    def test_nan_equal(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        a.mkdir(), b.mkdir()
        (a / "x.json").write_text(json.dumps({"data": {"v": None}}))
        (b / "x.json").write_text(json.dumps({"data": {"v": None}}))
        assert diff_results(a, b).clean
