"""Tests for statistical helpers (ecdf, violin, share) incl. property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.frame import (
    ecdf,
    ecdf_at,
    histogram_counts,
    log_bins,
    share,
    violin_summary,
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestEcdf:
    def test_simple(self):
        x, p = ecdf(np.array([1.0, 2.0, 2.0, 3.0]))
        assert list(x) == [1.0, 2.0, 3.0]
        assert list(p) == [0.25, 0.75, 1.0]

    def test_empty(self):
        x, p = ecdf(np.array([]))
        assert len(x) == 0 and len(p) == 0

    @given(hnp.arrays(float, st.integers(1, 200), elements=finite_floats))
    @settings(max_examples=50)
    def test_properties(self, values):
        x, p = ecdf(values)
        assert np.all(np.diff(x) > 0)          # support strictly increasing
        assert np.all(np.diff(p) > 0)          # probabilities increasing
        assert p[-1] == pytest.approx(1.0)     # reaches 1
        assert np.all((p > 0) & (p <= 1))

    @given(hnp.arrays(float, st.integers(1, 100), elements=finite_floats))
    @settings(max_examples=50)
    def test_ecdf_at_agrees(self, values):
        x, p = ecdf(values)
        assert np.allclose(ecdf_at(values, x), p)

    def test_ecdf_at_outside_support(self):
        v = np.array([1.0, 2.0])
        assert ecdf_at(v, np.array([0.0]))[0] == 0.0
        assert ecdf_at(v, np.array([5.0]))[0] == 1.0

    def test_ecdf_at_empty_values(self):
        assert ecdf_at(np.array([]), np.array([1.0, 2.0])).sum() == 0


class TestShare:
    def test_partition_sums_to_one(self):
        w = np.array([1.0, 2.0, 3.0, 4.0])
        labels = np.array([0, 1, 0, 2])
        s = share(w, labels, [0, 1, 2])
        assert s.sum() == pytest.approx(1.0)
        assert s[0] == pytest.approx(0.4)

    def test_missing_label_zero(self):
        s = share(np.array([1.0]), np.array([0]), [0, 1])
        assert s[1] == 0.0

    def test_zero_total(self):
        s = share(np.array([0.0]), np.array([0]), [0, 1])
        assert np.all(s == 0)

    def test_empty_inputs_yield_zeros(self):
        # empty-input audit: share must not raise on a jobless system
        s = share(np.array([]), np.array([]), [0, 1, 2])
        assert s.shape == (3,) and np.all(s == 0)


class TestViolin:
    def test_order_of_quantiles(self):
        rng = np.random.default_rng(0)
        v = violin_summary(rng.lognormal(3, 1, 1000))
        assert (
            v.minimum <= v.p05 <= v.p25 <= v.median <= v.p75 <= v.p95 <= v.maximum
        )
        assert v.count == 1000

    def test_mode_near_median_for_lognormal(self):
        rng = np.random.default_rng(1)
        vals = rng.lognormal(np.log(100), 0.3, 5000)
        v = violin_summary(vals)
        assert 50 < v.mode < 200  # log-space mode near the median

    def test_empty(self):
        v = violin_summary(np.array([]))
        assert v.count == 0 and np.isnan(v.median)

    def test_single_value(self):
        v = violin_summary(np.array([5.0]))
        assert v.median == 5.0 and v.count == 1

    def test_as_dict_keys(self):
        d = violin_summary(np.array([1.0, 2.0])).as_dict()
        assert {"count", "min", "median", "max", "mode"} <= set(d)

    @given(hnp.arrays(float, st.integers(1, 100),
                      elements=st.floats(0.001, 1e6)))
    @settings(max_examples=30)
    def test_bounds_property(self, values):
        v = violin_summary(values)
        assert v.minimum == values.min() and v.maximum == values.max()
        # 1-ulp tolerance: np.mean of identical values can exceed max
        assert v.minimum * (1 - 1e-12) <= v.mean <= v.maximum * (1 + 1e-12)


class TestBins:
    def test_histogram_counts(self):
        c = histogram_counts(np.array([1.0, 2.0, 3.0]), np.array([0, 2, 4]))
        assert list(c) == [1, 2]

    def test_log_bins_cover_range(self):
        b = log_bins(1.0, 1000.0, per_decade=5)
        assert b[0] == pytest.approx(1.0)
        assert b[-1] == pytest.approx(1000.0)
        assert np.all(np.diff(np.log10(b)) > 0)

    def test_log_bins_need_positive(self):
        with pytest.raises(ValueError):
            log_bins(0.0, 10.0)
