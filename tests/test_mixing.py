"""Tests for hybrid-workload mixing."""

import numpy as np
import pytest

from repro.traces import CANONICAL_COLUMNS, validate_trace
from repro.traces.mixing import mix_traces
from repro.traces.synth import generate_trace


@pytest.fixture(scope="module")
def base():
    return generate_trace("theta", days=2, seed=1)


@pytest.fixture(scope="module")
def extra():
    return generate_trace("helios", days=0.5, seed=1)


def test_zero_fraction_is_base(base, extra):
    mixed = mix_traces(base, extra, 0.0)
    assert mixed.num_jobs == base.num_jobs
    assert mixed.system is base.system


def test_target_fraction_hit(base, extra):
    mixed = mix_traces(base, extra, 0.5)
    foreign = mixed["user_id"] > base["user_id"].max()
    assert np.mean(foreign) == pytest.approx(0.5, abs=0.05)


def test_core_scaling_and_clipping(base, extra):
    mixed = mix_traces(base, extra, 0.3, core_scale=64.0)
    assert mixed["cores"].max() <= base.system.schedulable_units
    assert mixed["cores"].min() >= 1


def test_submit_times_within_base_window(base, extra):
    mixed = mix_traces(base, extra, 0.3)
    assert mixed["submit_time"].min() >= base["submit_time"].min() - 1e-6
    assert mixed["submit_time"].max() <= base["submit_time"].max() + 1e-6
    assert np.all(np.diff(mixed["submit_time"]) >= 0)


def test_mixed_trace_validates(base, extra):
    mixed = mix_traces(base, extra, 0.4, core_scale=64.0)
    assert validate_trace(mixed).consistent


def test_canonical_columns_only(base, extra):
    mixed = mix_traces(base, extra, 0.2)
    assert set(mixed.jobs.column_names) == set(CANONICAL_COLUMNS)


def test_user_ids_disjoint(base, extra):
    mixed = mix_traces(base, extra, 0.4)
    foreign_users = np.unique(
        mixed["user_id"][mixed["user_id"] > base["user_id"].max()]
    )
    assert len(foreign_users) > 0


def test_meta_records_mixing(base, extra):
    mixed = mix_traces(base, extra, 0.25, core_scale=16.0)
    assert mixed.meta["mixed_from"] == "Helios"
    assert mixed.meta["extra_job_fraction"] == 0.25


def test_invalid_fraction(base, extra):
    with pytest.raises(ValueError):
        mix_traces(base, extra, 1.0)
    with pytest.raises(ValueError):
        mix_traces(base, extra, -0.1)
