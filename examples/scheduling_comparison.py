#!/usr/bin/env python3
"""Compare scheduling policies and backfilling strategies on an HPC workload.

The paper's use case 2 motivates adaptive relaxed backfilling; this example
goes wider: it sweeps queue policies (FCFS/SJF/WFP3/...) crossed with
backfilling modes (none/EASY/relaxed/adaptive) on a synthetic Theta month
and prints the wait/bsld/util/violation grid.

Run:  python examples/scheduling_comparison.py
"""

from repro.sched import (
    EASY,
    NO_BACKFILL,
    adaptive_relaxed,
    compute_metrics,
    relaxed,
    simulate,
    workload_from_trace,
)
from repro.traces.synth import generate_trace
from repro.viz import render_table, seconds


def main() -> None:
    trace = generate_trace("theta", days=10, seed=3)
    workload = workload_from_trace(trace)
    capacity = trace.system.schedulable_units
    print(
        f"Simulating {workload.n} Theta jobs on {capacity:,} cores "
        f"({trace.meta['days']} days)\n"
    )

    backfills = [
        ("none", NO_BACKFILL),
        ("easy", EASY),
        ("relaxed-10%", relaxed(0.1)),
        ("adaptive-10%", adaptive_relaxed(0.1)),
    ]
    rows = []
    for policy in ("fcfs", "sjf", "wfp3"):
        for bf_name, bf in backfills:
            metrics = compute_metrics(
                simulate(workload, capacity, policy, bf)
            )
            rows.append(
                [
                    policy,
                    bf_name,
                    seconds(metrics.wait),
                    f"{metrics.bsld:.2f}",
                    f"{metrics.util:.3f}",
                    seconds(metrics.violation),
                ]
            )
    print(
        render_table(
            ["policy", "backfill", "avg wait", "bsld", "util", "violation"],
            rows,
            title="Scheduling strategy grid",
        )
    )
    print(
        "\nNote how backfilling slashes waits versus 'none', how relaxing "
        "backfills more at the price of reservation violations, and how the "
        "adaptive variant claws the violations back (paper Table II)."
    )


if __name__ == "__main__":
    main()
