#!/usr/bin/env python3
"""Runtime prediction with the elapsed-time feature (paper use case 1).

Builds the prediction dataset from a synthetic Philly trace, trains the five
model families of Fig 12 with and without the elapsed-time feature, and
prints the underestimation-rate / accuracy comparison.

Run:  python examples/runtime_prediction.py
"""

from repro.predict import run_use_case1
from repro.traces.synth import generate_trace
from repro.viz import percent, render_table


def main() -> None:
    trace = generate_trace("philly", days=12, seed=7)
    print(f"Philly-like trace: {trace.num_jobs} jobs\n")

    comparison = run_use_case1(
        trace,
        fractions=(0.125, 0.25, 0.5),
        models=("last2", "tobit", "xgboost", "lr", "mlp"),
        max_jobs=8000,
    )

    rows = []
    for r in comparison.results:
        rows.append(
            [
                r.model,
                f"{r.elapsed_fraction:g}",
                r.arm,
                percent(r.underestimate_rate),
                percent(r.avg_accuracy),
                str(r.n_test),
            ]
        )
    print(
        render_table(
            ["model", "elapsed frac", "arm", "underestimate", "accuracy", "n"],
            rows,
            title="Use case 1: with vs without elapsed time (Fig 12)",
        )
    )

    # quantify the headline claim
    gains = []
    for r in comparison.results:
        if r.arm != "baseline":
            continue
        partner = comparison.cell(r.model, r.elapsed_fraction, "elapsed")
        gains.append(r.underestimate_rate - partner.underestimate_rate)
    print(
        f"\nMean underestimation-rate reduction from elapsed time: "
        f"{100 * sum(gains) / len(gains):.1f} points "
        "(the paper's key use-case-1 result)."
    )


if __name__ == "__main__":
    main()
