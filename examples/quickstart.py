#!/usr/bin/env python3
"""Quickstart: generate the five systems' workloads and run the full study.

This reproduces, at small scale, the paper's whole pipeline in ~30 lines:
synthetic traces -> cross-system characterization -> the eight takeaways.

Run:  python examples/quickstart.py
"""

from repro import CrossSystemStudy
from repro.viz import percent, render_table, seconds


def main() -> None:
    # One synthetic week per system; fully reproducible with a fixed seed.
    study = CrossSystemStudy.generate(days=7, seed=42)

    print("Generated traces:")
    for name, trace in study.traces.items():
        print(
            f"  {name:12s} {trace.num_jobs:7d} jobs on "
            f"{trace.system.schedulable_units:,} {trace.system.resource.value} units"
        )

    # Fig 1 headline geometry numbers
    geometry = study.geometry()
    rows = [
        [
            name,
            seconds(g.runtime.median),
            seconds(g.arrival.median_interval),
            percent(g.allocation.single_unit_fraction),
        ]
        for name, g in geometry.items()
    ]
    print()
    print(
        render_table(
            ["system", "median runtime", "median interval", "1-unit jobs"],
            rows,
            title="Job geometries (paper Fig 1)",
        )
    )

    # The paper's eight takeaways, evaluated programmatically
    print("\nTakeaways:")
    for takeaway in study.takeaways():
        print(f"  {takeaway}")


if __name__ == "__main__":
    main()
