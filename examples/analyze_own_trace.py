#!/usr/bin/env python3
"""Analyze your own trace: SWF in, paper-style characterization out.

The paper ships its pipeline so operators can compare their clusters against
the five studied systems.  This example shows that workflow end-to-end:

1. export a synthetic trace to the Standard Workload Format (stand-in for
   your scheduler's accounting log),
2. read it back with :func:`repro.read_swf`,
3. validate it (the Table I consistency screen),
4. run the per-system analyses and print the figures' rows.

Run:  python examples/analyze_own_trace.py [path/to/trace.swf]
"""

import sys
import tempfile
from pathlib import Path

from repro import read_swf, write_swf
from repro.core import (
    core_hour_shares,
    repetition_summary,
    runtime_summary,
    status_shares,
    wait_summary,
)
from repro.traces import validate_trace
from repro.traces.synth import generate_trace
from repro.viz import percent, render_table, seconds


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        # no file supplied: fabricate one, exactly what an operator would have
        path = Path(tempfile.mkdtemp()) / "mycluster.swf"
        write_swf(generate_trace("theta", days=5, seed=11), path)
        print(f"(no SWF given; wrote a demo trace to {path})\n")

    trace = read_swf(path)
    print(
        f"Loaded {trace.num_jobs} jobs from {path.name} "
        f"(system: {trace.system.name}, {trace.system.schedulable_units:,} units)"
    )

    report = validate_trace(trace)
    print(f"Consistency check: {report}\n")
    if not report.consistent:
        print("Fix the issues above before trusting the analysis.")

    rt = runtime_summary(trace)
    wt = wait_summary(trace)
    ch = core_hour_shares(trace)
    st = status_shares(trace)
    rep = repetition_summary(trace)

    rows = [
        ["median runtime", seconds(rt.median)],
        ["median wait", seconds(wt.median_wait)],
        ["dominant size class", ch.dominant_size()],
        ["dominant length class", ch.dominant_length()],
        ["passed jobs", percent(st.passed_count_share)],
        ["core-hours wasted on failed/killed", percent(st.wasted_core_hour_share)],
        ["jobs in users' top-10 config groups", percent(rep.top(10))],
    ]
    print(render_table(["metric", "value"], rows, title="Your cluster at a glance"))
    print(
        "\nCompare these against the paper's five systems with "
        "`python -m repro.experiments all`."
    )


if __name__ == "__main__":
    main()
