#!/usr/bin/env python3
"""Clone a cluster's workload: fit a generative model, regenerate, compare.

Operators rarely may share raw logs; a fitted statistical clone often can
be shared.  This example fits the full generative model (EM lognormal
mixtures for runtimes, empirical sizes/diurnal/status/wait models, session
structure) from a source trace and verifies the clone matches on the
paper's headline statistics — then shows the clone drives the scheduler
simulator just like the original.

Run:  python examples/clone_workload.py
"""

import numpy as np

from repro.sched import EASY, compute_metrics, simulate, workload_from_trace
from repro.traces.synth import fit_calibration, generate_trace
from repro.viz import render_table, seconds


def stats_row(name, trace):
    return [
        name,
        str(trace.num_jobs),
        seconds(float(np.median(trace["runtime"]))),
        seconds(float(np.median(trace.arrival_intervals()))),
        f"{float((trace['status'] == 0).mean()):.2f}",
        seconds(float(np.median(trace["wait_time"]))),
    ]


def main() -> None:
    # pretend this is your cluster's log (any Trace works, incl. read_swf)
    source = generate_trace("theta", days=10, seed=4)
    print(f"Source: {source.num_jobs} jobs on {source.system.name}\n")

    calibration = fit_calibration(source)
    clone = generate_trace(calibration, days=10, seed=2024)

    print(
        render_table(
            ["trace", "jobs", "median rt", "median gap", "passed", "median wait"],
            [stats_row("source", source), stats_row("clone", clone)],
            title="Source vs fitted clone (headline statistics)",
        )
    )

    rows = []
    for label, trace in (("source", source), ("clone", clone)):
        metrics = compute_metrics(
            simulate(
                workload_from_trace(trace),
                trace.system.schedulable_units,
                "fcfs",
                EASY,
            )
        )
        rows.append(
            [label, seconds(metrics.wait), f"{metrics.bsld:.2f}", f"{metrics.util:.3f}"]
        )
    print()
    print(
        render_table(
            ["trace", "sim wait", "sim bsld", "sim util"],
            rows,
            title="EASY-backfilling simulation on both traces",
        )
    )
    print(
        "\nThe clone carries no job-level information from the source - only "
        "fitted distribution parameters - yet reproduces its scheduling "
        "behaviour."
    )


if __name__ == "__main__":
    main()
