#!/usr/bin/env python3
"""Cluster health check: classify your workload and get scheduling advice.

Combines two of the library's synthesis layers:

1. :func:`repro.core.nearest_system` — which of the paper's five systems
   does your workload resemble (KS distances over the key marginals)?
2. :func:`repro.core.advise` — rule-based recommendations derived from the
   paper's eight takeaways.

Run:  python examples/cluster_health_check.py [trace.swf]
"""

import sys

from repro.core import advise, nearest_system
from repro.traces import read_swf
from repro.traces.synth import generate_trace
from repro.viz import render_table


def main() -> None:
    if len(sys.argv) > 1:
        trace = read_swf(sys.argv[1])
        print(f"Loaded {trace.num_jobs} jobs from {sys.argv[1]}\n")
    else:
        # demo: a hybrid-ish workload (Blue Waters calibration)
        trace = generate_trace("blue_waters", days=3, seed=21)
        print(f"(demo: {trace.num_jobs} synthetic Blue Waters-like jobs)\n")

    ranking = nearest_system(trace, days=2, seed=1)
    print(
        render_table(
            ["reference system", "workload distance"],
            [[name, f"{dist:.3f}"] for name, dist in ranking],
            title="Which studied system does this workload resemble? "
            "(0 = identical marginals)",
        )
    )
    best = ranking[0][0]
    print(
        f"\n-> closest match: {best}. The paper's observations for {best} "
        "are your starting point.\n"
    )

    print("Scheduling advice (from the eight takeaways):")
    recommendations = advise(trace)
    if not recommendations:
        print("  nothing to flag - enviable cluster!")
    for rec in recommendations:
        print(f"  {rec}")


if __name__ == "__main__":
    main()
