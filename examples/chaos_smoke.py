#!/usr/bin/env python3
"""Chaos smoke: prove sweeps survive crashes, retries and interruption.

The crash-safety acceptance test run by CI (and runnable by hand):

1. **Clean baseline** — a small policy sweep run serially.
2. **Chaos run** — the same sweep with 30% injected worker crashes and
   20% transient errors, healed by the watchdog's seeded retries; its
   results must be **bit-identical** to the baseline.
3. **Kill + resume** — the sweep is aborted partway (simulating a
   SIGKILL mid-campaign), then resumed from its journal; the resume must
   recompute **zero** already-completed cells and again match the
   baseline bit for bit.

Run:  PYTHONPATH=src python examples/chaos_smoke.py [--jobs N]

Exits non-zero (via assert) if any property fails; see
``docs/PARALLELISM.md`` ("Crash-safe sweeps") and ``tests/test_chaos.py``
for the full property suite.
"""

import argparse
import sys
import time

from repro.obs.runs import ProgressReporter
from repro.runner import (
    FailureReport,
    RetryPolicy,
    SimTask,
    SweepJournal,
    SweepStats,
    WorkloadSpec,
    run_sweep,
)
from repro.testkit import ChaosConfig

POLICIES = ("fcfs", "sjf", "f1", "wfp3")


def build_tasks(days: float, seed: int, max_jobs: int) -> list[SimTask]:
    return [
        SimTask(
            label=policy,
            workload=WorkloadSpec(
                system="theta", days=days, seed=seed, max_jobs=max_jobs
            ),
            policy=policy,
        )
        for policy in POLICIES
    ]


class _AbortMidSweep(BaseException):
    """Raised from a progress hook to simulate a kill mid-campaign."""


class _AbortAfter(ProgressReporter):
    enabled = True

    def __init__(self, n: int) -> None:
        self.n = n
        self.seen = 0

    def task_done(self, record, done, total) -> None:
        self.seen += 1
        if self.seen >= self.n:
            raise _AbortMidSweep()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--days", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-jobs", type=int, default=400)
    parser.add_argument(
        "--journal", default="/tmp/chaos-smoke-journal.jsonl",
        help="journal path for the kill/resume phase (removed first)",
    )
    args = parser.parse_args(argv)

    import os

    if os.path.exists(args.journal):
        os.remove(args.journal)

    tasks = build_tasks(args.days, args.seed, args.max_jobs)

    # 1. clean serial baseline ------------------------------------------------
    t0 = time.perf_counter()
    baseline = run_sweep(tasks, jobs=1)
    base_s = time.perf_counter() - t0
    print(f"baseline: {len(tasks)} cells in {base_s:.1f}s (serial, no chaos)")

    # 2. chaos + retries => bit-identical ------------------------------------
    chaos = ChaosConfig(crash_p=0.3, error_p=0.2, seed=7)
    faulty_first_attempts = sum(
        chaos.fault_for(t.fingerprint(), 1) is not None for t in tasks
    )
    assert faulty_first_attempts > 0, (
        "chaos seed drew no faults at all; raise the probabilities or "
        "change the seed so the smoke actually exercises the watchdog"
    )
    report = FailureReport()
    stats = SweepStats()
    healed = run_sweep(
        tasks,
        jobs=args.jobs,
        chaos=chaos,
        on_error="retry",
        retry=RetryPolicy(max_attempts=8, backoff_base=0.0),
        failures_out=report,
        stats_out=stats,
    )
    assert report.ok, f"cells failed terminally: {report.summary()}"
    assert [r.payload() for r in healed] == [r.payload() for r in baseline], (
        "chaos-healed results are NOT bit-identical to the clean baseline"
    )
    print(
        f"chaos:    {faulty_first_attempts} first attempts faulted, "
        f"{report.n_retried} attempt(s) retried, results bit-identical"
    )

    # 3. kill mid-sweep, then resume from the journal -------------------------
    killed_after = len(tasks) // 2
    try:
        run_sweep(
            tasks,
            jobs=1,
            journal=args.journal,
            progress=_AbortAfter(killed_after),
        )
    except _AbortMidSweep:
        pass
    else:
        raise AssertionError("the abort hook never fired")

    completed = SweepJournal(args.journal).completed()
    assert len(completed) == killed_after, (
        f"journal holds {len(completed)} cells, expected {killed_after}"
    )

    t0 = time.perf_counter()
    resume_stats = SweepStats()
    resumed = run_sweep(
        tasks, jobs=args.jobs, journal=args.journal, stats_out=resume_stats
    )
    resume_s = time.perf_counter() - t0
    assert resume_stats.n_journal == killed_after, resume_stats.summary()
    assert resume_stats.n_executed == len(tasks) - killed_after
    assert [r.payload() for r in resumed] == [r.payload() for r in baseline], (
        "resumed results are NOT bit-identical to the clean baseline"
    )

    # 4. warm rerun: everything replays from the journal in ~no time ----------
    t0 = time.perf_counter()
    warm_stats = SweepStats()
    warm = run_sweep(
        tasks, jobs=args.jobs, journal=args.journal, stats_out=warm_stats
    )
    warm_s = time.perf_counter() - t0
    assert warm_stats.n_executed == 0, "warm journal rerun recomputed cells"
    assert [r.payload() for r in warm] == [r.payload() for r in baseline]
    print(
        f"resume:   killed after {killed_after}/{len(tasks)} cells, resume "
        f"recomputed {resume_stats.n_executed} in {resume_s:.1f}s, warm rerun "
        f"recomputed 0 in {warm_s:.2f}s"
    )
    print("ok: chaos healed, kill survived, resume bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
